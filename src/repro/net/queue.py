"""Output queues: drop-tail and DCTCP-style ECN marking.

The ECN queue implements the marking scheme DCTCP and DCQCN assume: a
single threshold ``K`` on the instantaneous queue length; packets that
arrive when the backlog is at or above ``K`` get their ECN field rewritten
to CE (DCQCN's RED-like min/max marking can be approximated by this with
``K = Kmin``, which is how the NVIDIA parameter guide configures lossless
fabrics for testing).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.net.packet import Packet


@dataclass
class QueueStats:
    """Counters exposed by every queue (readable like hardware registers)."""

    enqueued_packets: int = 0
    enqueued_bytes: int = 0
    dequeued_packets: int = 0
    dequeued_bytes: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0
    ecn_marked_packets: int = 0
    max_backlog_bytes: int = 0


class DropTailQueue:
    """FIFO with a byte-capacity bound; arrivals beyond capacity are dropped."""

    #: Optional :class:`repro.obs.flight.FlightRecorder`; class-level None
    #: so an unattached queue pays only the rare-branch ``is not None``
    #: checks (same contract as ``on_backlog_change``).
    _flight = None
    #: Human label used in flight events (set by ``flight.attach``).
    flight_label = ""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._queue: deque[Packet] = deque()
        self.backlog_bytes = 0
        self.stats = QueueStats()
        #: Optional observer called with the new backlog after every
        #: enqueue/dequeue (used by the PFC controller).
        self.on_backlog_change = None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False (and counts a drop) when full."""
        if self.backlog_bytes + packet.size_bytes > self.capacity_bytes:
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size_bytes
            if self._flight is not None:
                self._flight.note(
                    "queue", "drop",
                    queue=self.flight_label,
                    size_bytes=packet.size_bytes,
                    backlog_bytes=self.backlog_bytes,
                    flow=packet.flow_id,
                )
            return False
        self._queue.append(packet)
        self.backlog_bytes += packet.size_bytes
        if self._flight is not None and self._flight.enqueues:
            self._flight.note(
                "queue", "enqueue",
                queue=self.flight_label,
                size_bytes=packet.size_bytes,
                backlog_bytes=self.backlog_bytes,
                flow=packet.flow_id,
            )
        self._on_accept(packet)
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size_bytes
        if self.backlog_bytes > self.stats.max_backlog_bytes:
            self.stats.max_backlog_bytes = self.backlog_bytes
        if self.on_backlog_change is not None:
            self.on_backlog_change(self.backlog_bytes)
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.backlog_bytes -= packet.size_bytes
        self.stats.dequeued_packets += 1
        self.stats.dequeued_bytes += packet.size_bytes
        if self.on_backlog_change is not None:
            self.on_backlog_change(self.backlog_bytes)
        return packet

    def _on_accept(self, packet: Packet) -> None:
        """Hook for subclasses, called just before an accepted enqueue."""


class EcnQueue(DropTailQueue):
    """Drop-tail queue that CE-marks arrivals when the backlog is >= K."""

    def __init__(self, capacity_bytes: int, ecn_threshold_bytes: int) -> None:
        super().__init__(capacity_bytes)
        if not 0 < ecn_threshold_bytes <= capacity_bytes:
            raise ValueError(
                "ecn_threshold_bytes must be in (0, capacity_bytes], got "
                f"{ecn_threshold_bytes} with capacity {capacity_bytes}"
            )
        self.ecn_threshold_bytes = ecn_threshold_bytes

    def _on_accept(self, packet: Packet) -> None:
        if self.backlog_bytes >= self.ecn_threshold_bytes:
            before = packet.ce_marked
            packet.mark_ce()
            if packet.ce_marked and not before:
                self.stats.ecn_marked_packets += 1
                if self._flight is not None:
                    self._flight.note(
                        "queue", "ecn_mark",
                        queue=self.flight_label,
                        backlog_bytes=self.backlog_bytes,
                        flow=packet.flow_id,
                    )
