"""Output queues: drop-tail and DCTCP-style ECN marking.

The ECN queue implements the marking scheme DCTCP and DCQCN assume: a
single threshold ``K`` on the instantaneous queue length; packets that
arrive when the backlog is at or above ``K`` get their ECN field rewritten
to CE (DCQCN's RED-like min/max marking can be approximated by this with
``K = Kmin``, which is how the NVIDIA parameter guide configures lossless
fabrics for testing).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.packet import Packet

try:  # the compiled queue core (see repro.sim._cengine: CQueue)
    from repro.sim import _cengine as _C
except Exception:  # pragma: no cover - extension not built
    _C = None


class QueueStats:
    """Counters exposed by every queue (readable like hardware registers).

    The counters themselves live as plain attributes on the queue — the
    per-packet enqueue/dequeue path increments one attribute instead of
    going through an extra indirection — and this view exposes them
    under the stable ``queue.stats.name`` API."""

    __slots__ = ("_q",)

    def __init__(self, queue: "DropTailQueue") -> None:
        self._q = queue

    enqueued_packets = property(lambda s: s._q.enqueued_packets)
    enqueued_bytes = property(lambda s: s._q.enqueued_bytes)
    dequeued_packets = property(lambda s: s._q.dequeued_packets)
    dequeued_bytes = property(lambda s: s._q.dequeued_bytes)
    dropped_packets = property(lambda s: s._q.dropped_packets)
    dropped_bytes = property(lambda s: s._q.dropped_bytes)
    ecn_marked_packets = property(lambda s: s._q.ecn_marked_packets)
    max_backlog_bytes = property(lambda s: s._q.max_backlog_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in (
                "enqueued_packets", "enqueued_bytes", "dequeued_packets",
                "dequeued_bytes", "dropped_packets", "dropped_bytes",
                "ecn_marked_packets", "max_backlog_bytes",
            )
        )
        return f"QueueStats({fields})"


class _PyDropTailQueue:
    """FIFO with a byte-capacity bound; arrivals beyond capacity are dropped."""

    __slots__ = (
        "capacity_bytes", "_queue", "backlog_bytes",
        "enqueued_packets", "enqueued_bytes",
        "dequeued_packets", "dequeued_bytes",
        "dropped_packets", "dropped_bytes",
        "ecn_marked_packets", "max_backlog_bytes",
        "stats", "ecn_threshold_bytes", "on_backlog_change",
        "_flight", "flight_label",
    )

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        #: Optional :class:`repro.obs.flight.FlightRecorder` (set by
        #: ``flight.attach``) and its human label; an unattached queue
        #: pays only the rare-branch ``is not None`` checks (same
        #: contract as ``on_backlog_change``).
        self._flight = None
        self.flight_label = ""
        self.capacity_bytes = capacity_bytes
        self._queue: deque[Packet] = deque()
        self.backlog_bytes = 0
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dequeued_packets = 0
        self.dequeued_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.ecn_marked_packets = 0
        self.max_backlog_bytes = 0
        self.stats = QueueStats(self)
        #: CE-mark threshold; ``None`` disables marking.  Kept on the
        #: base class so ``enqueue`` tests one attribute instead of
        #: dispatching to a subclass hook per packet.
        self.ecn_threshold_bytes: Optional[int] = None
        #: Optional observer called with the new backlog after every
        #: enqueue/dequeue (used by the PFC controller).
        self.on_backlog_change = None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False (and counts a drop) when full."""
        size = packet.size_bytes
        backlog = self.backlog_bytes + size
        if backlog > self.capacity_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += size
            if self._flight is not None:
                self._flight.note(
                    "queue", "drop",
                    queue=self.flight_label,
                    size_bytes=size,
                    backlog_bytes=self.backlog_bytes,
                    flow=packet.flow_id,
                )
            return False
        self._queue.append(packet)
        self.backlog_bytes = backlog
        if self._flight is not None and self._flight.enqueues:
            self._flight.note(
                "queue", "enqueue",
                queue=self.flight_label,
                size_bytes=size,
                backlog_bytes=backlog,
                flow=packet.flow_id,
            )
        threshold = self.ecn_threshold_bytes
        if threshold is not None and backlog >= threshold:
            before = packet.ce_marked
            packet.mark_ce()
            if packet.ce_marked and not before:
                self.ecn_marked_packets += 1
                if self._flight is not None:
                    self._flight.note(
                        "queue", "ecn_mark",
                        queue=self.flight_label,
                        backlog_bytes=backlog,
                        flow=packet.flow_id,
                    )
        self.enqueued_packets += 1
        self.enqueued_bytes += size
        if backlog > self.max_backlog_bytes:
            self.max_backlog_bytes = backlog
        if self.on_backlog_change is not None:
            self.on_backlog_change(backlog)
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        backlog = self.backlog_bytes - packet.size_bytes
        self.backlog_bytes = backlog
        self.dequeued_packets += 1
        self.dequeued_bytes += packet.size_bytes
        if self.on_backlog_change is not None:
            self.on_backlog_change(backlog)
        return packet


if _C is not None:
    class DropTailQueue(_C.CQueue):
        """FIFO with a byte-capacity bound; arrivals beyond capacity are
        dropped.

        Compiled variant: the ring buffer, counters, ECN compare, and
        the rare-path hooks all live in :class:`repro.sim._cengine.CQueue`
        with semantics identical to :class:`_PyDropTailQueue` (which is
        the class you get when the extension isn't built)."""

        __slots__ = ()

        def __init__(self, capacity_bytes: int) -> None:
            if capacity_bytes <= 0:
                raise ValueError(
                    f"capacity must be positive, got {capacity_bytes}"
                )
            _C.CQueue.__init__(self, capacity_bytes)
            self.stats = QueueStats(self)
else:  # pragma: no cover - exercised on builds without the extension
    DropTailQueue = _PyDropTailQueue


class EcnQueue(DropTailQueue):
    """Drop-tail queue that CE-marks arrivals when the backlog is >= K.

    Marking itself lives inline in :meth:`DropTailQueue.enqueue` (gated
    on ``ecn_threshold_bytes``); this subclass only validates and sets
    the threshold."""

    __slots__ = ()

    def __init__(self, capacity_bytes: int, ecn_threshold_bytes: int) -> None:
        super().__init__(capacity_bytes)
        if not 0 < ecn_threshold_bytes <= capacity_bytes:
            raise ValueError(
                "ecn_threshold_bytes must be in (0, capacity_bytes], got "
                f"{ecn_threshold_bytes} with capacity {capacity_bytes}"
            )
        self.ecn_threshold_bytes = ecn_threshold_bytes
