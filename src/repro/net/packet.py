"""The packet model.

One class covers every packet in the system.  Marlin's five packet types
(TEMP, DATA, ACK, INFO, SCHE — Section 3.1) are distinguished by the
``ptype`` field; type-specific constructors live in
:mod:`repro.pswitch.packets`.

ECN follows RFC 3168 vocabulary: an ECN-capable packet carries ``ECT`` and
a congested queue rewrites it to ``CE``.  Receivers echo ``CE`` back to the
sender in the ``ecn_echo`` flag of ACKs.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import PacketPoolError

#: ECN codepoints (subset of RFC 3168 relevant to the model).
NOT_ECT = 0
ECT = 1
CE = 3

_packet_uid = itertools.count()


class Packet:
    """A simulated frame.

    ``size_bytes`` is the on-wire frame size excluding preamble/IFG (those
    are added by :func:`repro.units.wire_bits` during serialization).
    """

    __slots__ = (
        "uid",
        "ptype",
        "src",
        "dst",
        "flow_id",
        "psn",
        "size_bytes",
        "ecn",
        "ecn_echo",
        "created_ps",
        "meta",
        "_freed",
    )

    def __init__(
        self,
        ptype: str,
        src: int,
        dst: int,
        size_bytes: int,
        *,
        flow_id: int = -1,
        psn: int = -1,
        ecn: int = NOT_ECT,
        ecn_echo: bool = False,
        created_ps: int = 0,
        meta: Optional[dict[str, Any]] = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.uid = next(_packet_uid)
        self.ptype = ptype
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.psn = psn
        self.size_bytes = size_bytes
        self.ecn = ecn
        self.ecn_echo = ecn_echo
        self.created_ps = created_ps
        self.meta = meta if meta is not None else {}
        self._freed = False

    def mark_ce(self) -> None:
        """Apply a congestion-experienced mark if the packet is ECN-capable."""
        if self.ecn == ECT:
            self.ecn = CE

    @property
    def ce_marked(self) -> bool:
        return self.ecn == CE

    def copy(self) -> "Packet":
        """A deep-enough copy (fresh uid, copied meta) for multicast."""
        return Packet(
            self.ptype,
            self.src,
            self.dst,
            self.size_bytes,
            flow_id=self.flow_id,
            psn=self.psn,
            ecn=self.ecn,
            ecn_echo=self.ecn_echo,
            created_ps=self.created_ps,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.ptype} uid={self.uid} {self.src}->{self.dst} "
            f"flow={self.flow_id} psn={self.psn} {self.size_bytes}B>"
        )


class _FreedMeta(dict):
    """Poisoned ``meta`` installed by :meth:`PacketPool.release` in debug
    mode: any access after release raises instead of silently reading a
    recycled packet."""

    def _use_after_release(self, *args: Any, **kwargs: Any) -> Any:
        raise PacketPoolError(
            "use-after-release: packet meta accessed after PacketPool.release()"
        )

    __getitem__ = _use_after_release
    __setitem__ = _use_after_release
    __contains__ = _use_after_release  # type: ignore[assignment]
    get = _use_after_release
    pop = _use_after_release
    setdefault = _use_after_release
    update = _use_after_release
    items = _use_after_release
    keys = _use_after_release
    values = _use_after_release


class PacketPool:
    """Free-list pool for the 64 B control packets (SCHE/ACK/INFO/TEMP/
    RDATA) that dominate allocation in the amplification path.

    Producers acquire through the :mod:`repro.pswitch.packets`
    constructors; the single consumer of each packet type releases it
    once its fields have been copied out (the switch after Module B/C
    consume ACK/SCHE, the NIC after the INFO parser).  Released packets
    are reinitialized in place on the next acquire — including a fresh
    ``uid`` and a cleared-and-reused ``meta`` dict — so a steady-state
    run allocates no packet objects at all on the control path.

    ``debug`` mode trades reuse for detection: released packets are
    poisoned (``ptype`` becomes ``"<freed>"`` and ``meta`` raises on any
    access) and double releases raise :class:`PacketPoolError`.
    """

    __slots__ = ("_free", "max_free", "debug", "enabled", "created", "reused", "released")

    def __init__(self, *, max_free: int = 4096, debug: bool = False) -> None:
        self._free: list[Packet] = []
        self.max_free = max_free
        self.debug = debug
        self.enabled = True
        self.created = 0
        self.reused = 0
        self.released = 0

    def acquire(
        self,
        ptype: str,
        src: int,
        dst: int,
        size_bytes: int,
        *,
        flow_id: int = -1,
        psn: int = -1,
        ecn: int = NOT_ECT,
        ecn_echo: bool = False,
        created_ps: int = 0,
    ) -> Packet:
        """A packet from the free list (reinitialized) or a fresh one.

        ``meta`` of a reused packet is the same dict object, cleared —
        callers fill it in place, so reuse allocates nothing.
        """
        free = self._free
        if not free:
            self.created += 1
            return Packet(
                ptype,
                src,
                dst,
                size_bytes,
                flow_id=flow_id,
                psn=psn,
                ecn=ecn,
                ecn_echo=ecn_echo,
                created_ps=created_ps,
            )
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        packet = free.pop()
        packet.uid = next(_packet_uid)
        packet.ptype = ptype
        packet.src = src
        packet.dst = dst
        packet.flow_id = flow_id
        packet.psn = psn
        packet.size_bytes = size_bytes
        packet.ecn = ecn
        packet.ecn_echo = ecn_echo
        packet.created_ps = created_ps
        packet.meta.clear()
        packet._freed = False
        self.reused += 1
        return packet

    def release(self, packet: Packet) -> None:
        """Return ``packet`` to the free list.  The caller must be the
        packet's final consumer: no other reference may be used again."""
        if packet._freed:
            if self.debug:
                raise PacketPoolError(f"double release of {packet!r}")
            return
        if not self.enabled:
            return
        packet._freed = True
        self.released += 1
        if self.debug:
            packet.ptype = "<freed>"
            packet.meta = _FreedMeta()
            return
        if len(self._free) < self.max_free:
            self._free.append(packet)

    def clear(self) -> None:
        """Drop the free list (tests; bounding memory between runs)."""
        self._free.clear()

    def stats(self) -> dict[str, int]:
        return {
            "created": self.created,
            "reused": self.reused,
            "released": self.released,
            "free": len(self._free),
        }


#: Process-wide pool used by the :mod:`repro.pswitch.packets` constructors.
PACKET_POOL = PacketPool()

