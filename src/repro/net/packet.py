"""The packet model.

One class covers every packet in the system.  Marlin's five packet types
(TEMP, DATA, ACK, INFO, SCHE — Section 3.1) are distinguished by the
``ptype`` field; type-specific constructors live in
:mod:`repro.pswitch.packets`.

ECN follows RFC 3168 vocabulary: an ECN-capable packet carries ``ECT`` and
a congested queue rewrites it to ``CE``.  Receivers echo ``CE`` back to the
sender in the ``ecn_echo`` flag of ACKs.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

#: ECN codepoints (subset of RFC 3168 relevant to the model).
NOT_ECT = 0
ECT = 1
CE = 3

_packet_uid = itertools.count()


class Packet:
    """A simulated frame.

    ``size_bytes`` is the on-wire frame size excluding preamble/IFG (those
    are added by :func:`repro.units.wire_bits` during serialization).
    """

    __slots__ = (
        "uid",
        "ptype",
        "src",
        "dst",
        "flow_id",
        "psn",
        "size_bytes",
        "ecn",
        "ecn_echo",
        "created_ps",
        "meta",
    )

    def __init__(
        self,
        ptype: str,
        src: int,
        dst: int,
        size_bytes: int,
        *,
        flow_id: int = -1,
        psn: int = -1,
        ecn: int = NOT_ECT,
        ecn_echo: bool = False,
        created_ps: int = 0,
        meta: Optional[dict[str, Any]] = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.uid = next(_packet_uid)
        self.ptype = ptype
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.psn = psn
        self.size_bytes = size_bytes
        self.ecn = ecn
        self.ecn_echo = ecn_echo
        self.created_ps = created_ps
        self.meta = meta if meta is not None else {}

    def mark_ce(self) -> None:
        """Apply a congestion-experienced mark if the packet is ECN-capable."""
        if self.ecn == ECT:
            self.ecn = CE

    @property
    def ce_marked(self) -> bool:
        return self.ecn == CE

    def copy(self) -> "Packet":
        """A deep-enough copy (fresh uid, copied meta) for multicast."""
        return Packet(
            self.ptype,
            self.src,
            self.dst,
            self.size_bytes,
            flow_id=self.flow_id,
            psn=self.psn,
            ecn=self.ecn,
            ecn_echo=self.ecn_echo,
            created_ps=self.created_ps,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.ptype} uid={self.uid} {self.src}->{self.dst} "
            f"flow={self.flow_id} psn={self.psn} {self.size_bytes}B>"
        )
