"""The tested network: an output-queued L2/L3 switch.

Forwarding is by destination address through a static table (the
experiments use static topologies, as the paper's testbed does).  Output
ports typically carry :class:`~repro.net.queue.EcnQueue` so DCTCP/DCQCN
receive congestion signals.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigError
from repro.net import int_telemetry
from repro.net.device import Device, Port
from repro.net.packet import Packet
from repro.net.queue import EcnQueue
from repro.sim.engine import Simulator
from repro.units import RATE_100G


class NetworkSwitch(Device):
    """Output-queued switch with static destination-based forwarding."""

    #: Optional :class:`repro.obs.flight.FlightRecorder`; class-level None
    #: so only the no-route branch ever tests it.
    _flight = None

    def __init__(self, sim: Simulator, name: Optional[str] = None) -> None:
        super().__init__(sim, name)
        self._forwarding: dict[int, Port] = {}
        #: ECMP groups: destination -> candidate ports, selected per flow
        #: by a deterministic hash (multi-path fabrics).
        self._ecmp: dict[int, list[Port]] = {}
        #: Memoized ECMP picks: (dst, flow, src) -> port.  The hash is a
        #: pure function of those keys and the (static) group, so the
        #: cache is exact; it is cleared when a group is (re)installed.
        self._ecmp_cache: dict[tuple, Port] = {}
        self.forwarded_packets = 0
        self.dropped_no_route = 0
        #: Optional per-packet interceptor used by experiments to inject
        #: deterministic loss or ECN marks (Figure 5).  Returning False
        #: drops the packet.
        self.packet_filter: Optional[Callable[[Packet, Port], bool]] = None

    def add_ecn_port(
        self,
        *,
        rate_bps: int = RATE_100G,
        capacity_bytes: int = 2**20,
        ecn_threshold_bytes: int = 84_000,
    ) -> Port:
        """Add a port whose output queue CE-marks above a threshold.

        The default threshold of 84 kB corresponds to K = 65 packets of
        1,250 B, in the range DCTCP recommends for 100 Gbps links.
        """
        queue = EcnQueue(capacity_bytes, ecn_threshold_bytes)
        return self.add_port(rate_bps=rate_bps, queue=queue)

    def set_route(self, dst: int, port: Port) -> None:
        if port.device is not self:
            raise ConfigError(
                f"route target {port.name} does not belong to switch {self.name}"
            )
        self._forwarding[dst] = port

    def set_ecmp_route(self, dst: int, ports: list[Port]) -> None:
        """Install a multi-path route: one of ``ports`` is selected per
        flow by hashing the flow ID, so a flow's packets never reorder
        across paths (standard ECMP behaviour)."""
        if not ports:
            raise ConfigError("ECMP group must contain at least one port")
        for port in ports:
            if port.device is not self:
                raise ConfigError(
                    f"ECMP member {port.name} does not belong to {self.name}"
                )
        self._ecmp[dst] = list(ports)
        self._ecmp_cache.clear()

    def route_for(self, dst: int) -> Optional[Port]:
        return self._forwarding.get(dst)

    def _select_port(self, packet: Packet) -> Optional[Port]:
        group = self._ecmp.get(packet.dst)
        if group is not None:
            cache_key = (packet.dst, packet.flow_id, packet.src)
            port = self._ecmp_cache.get(cache_key)
            if port is None:
                # Deterministic flow hash: (flow, src, dst) scrambled by
                # a 64-bit multiplicative hash, stable across runs.
                key = (packet.flow_id * 1_000_003 + packet.src * 97 + packet.dst)
                index = (key * 0x9E3779B97F4A7C15 >> 32) % len(group)
                port = group[index]
                self._ecmp_cache[cache_key] = port
            return port
        return self._forwarding.get(packet.dst)

    def receive(self, packet: Packet, port: Port) -> None:
        if self.packet_filter is not None and not self.packet_filter(packet, port):
            return
        # Single-path forwarding inline; only fabrics with ECMP groups
        # pay for the selector.
        if self._ecmp:
            out_port = self._select_port(packet)
        else:
            out_port = self._forwarding.get(packet.dst)
        if out_port is None:
            self.dropped_no_route += 1
            if self._flight is not None:
                self._flight.record(
                    self.sim.now, "switch", "drop_no_route",
                    switch=self.name, dst=packet.dst, flow=packet.flow_id,
                )
            return
        self.forwarded_packets += 1
        # Inlined INT gate (``stamp`` would no-op anyway; the common
        # non-INT case skips the call and the clock read entirely).
        if packet.meta.get(int_telemetry.INT_ENABLED):
            int_telemetry.stamp(packet, out_port, self.sim.now)
        out_port.send(packet)
