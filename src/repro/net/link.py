"""Full-duplex point-to-point links.

Serialization happens in the sending :class:`~repro.net.device.Port` (so
the port rate is the bottleneck); the link only adds propagation delay and
delivers the packet to the far end.  Links never reorder packets because
departures from one port are already serialized.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.net.device import Port
from repro.net.packet import Packet


class Link:
    """Connects exactly two ports with a fixed one-way propagation delay."""

    __slots__ = (
        "a", "b", "delay_ps", "name", "carried_packets", "carried_bytes",
        "_deliver_a", "_deliver_b", "_sim",
    )

    def __init__(self, a: Port, b: Port, *, delay_ps: int = 0, name: Optional[str] = None):
        if delay_ps < 0:
            raise ConfigError(f"link delay must be >= 0, got {delay_ps}")
        if a.link is not None or b.link is not None:
            raise ConfigError("a port can be attached to at most one link")
        if a is b:
            raise ConfigError("cannot connect a port to itself")
        self.a = a
        self.b = b
        self.delay_ps = delay_ps
        self.name = name if name is not None else f"{a.name}<->{b.name}"
        a.link = self
        b.link = self
        self.carried_packets = 0
        self.carried_bytes = 0
        # Hot-path aliases: per-direction deliver targets and the
        # simulator, bound once so `carry` does no peer lookup or
        # attribute chain per packet.
        self._deliver_a = a.deliver
        self._deliver_b = b.deliver
        self._sim = a.device.sim

    def peer(self, port: Port) -> Port:
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise ConfigError(f"port {port.name} is not attached to link {self.name}")

    def carry(self, src_port: Port, packet: Packet, *, depart_ps: int) -> None:
        """Deliver ``packet`` to the far end.  ``depart_ps`` is when the last
        bit leaves ``src_port``; arrival is that plus propagation delay."""
        if src_port is self.a:
            deliver = self._deliver_b
        elif src_port is self.b:
            deliver = self._deliver_a
        else:
            raise ConfigError(
                f"port {src_port.name} is not attached to link {self.name}"
            )
        self.carried_packets += 1
        self.carried_bytes += packet.size_bytes
        self._sim.at(depart_ps + self.delay_ps, deliver, packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} delay={self.delay_ps}ps>"
