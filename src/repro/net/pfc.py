"""Priority Flow Control (PFC): lossless Ethernet for RoCE/DCQCN.

DCQCN (the paper's rate-based workhorse) ships on lossless fabrics: PFC
PAUSE frames stop an upstream transmitter before the local buffer
overflows, and DCQCN exists to keep PFC from actually firing (the DCQCN
paper's framing).  This controller reproduces the mechanism and its
famous pathology:

* when any output queue of a switch crosses ``xoff_bytes``, PAUSE is
  sent to every neighbour feeding the switch (one PAUSE-frame flight
  time later, their transmitters stop);
* when the queue drains below ``xon_bytes``, the neighbours resume;
* because PAUSE acts per *link*, innocent flows sharing a paused link
  stall too — head-of-line blocking, observable in the tests.

This is the standard simulator-grade PFC model (per-switch watermarks,
not per-ingress accounting).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.net.device import Port
from repro.net.switch import NetworkSwitch
from repro.units import NANOSECOND

#: PAUSE-frame processing time at the sender, on top of link propagation.
PAUSE_REACTION_PS = 100 * NANOSECOND


class PfcController:
    """Watermark-based PAUSE/RESUME for one switch."""

    #: Optional :class:`repro.obs.flight.FlightRecorder`; only the
    #: pause/resume transition (already rare by design) tests it.
    _flight = None

    def __init__(
        self,
        switch: NetworkSwitch,
        *,
        xoff_bytes: int,
        xon_bytes: int,
    ) -> None:
        if not 0 < xon_bytes < xoff_bytes:
            raise ConfigError(
                f"need 0 < xon ({xon_bytes}) < xoff ({xoff_bytes})"
            )
        self.switch = switch
        self.sim = switch.sim
        self.xoff_bytes = xoff_bytes
        self.xon_bytes = xon_bytes
        #: Output queues currently above XOFF.
        self._congested: set[int] = set()
        self.pause_frames_sent = 0
        self.resume_frames_sent = 0
        for port in switch.ports:
            port.queue.on_backlog_change = self._make_watcher(port)

    # -- watermark tracking ------------------------------------------------------

    def _make_watcher(self, port: Port):
        def watch(backlog: int) -> None:
            index = port.index
            if backlog >= self.xoff_bytes and index not in self._congested:
                self._congested.add(index)
                if len(self._congested) == 1:
                    self._set_upstream(True)
            elif backlog <= self.xon_bytes and index in self._congested:
                self._congested.discard(index)
                if not self._congested:
                    self._set_upstream(False)

        return watch

    def _set_upstream(self, pause: bool) -> None:
        """PAUSE/RESUME every neighbour's transmitter toward this switch."""
        if self._flight is not None:
            self._flight.record(
                self.sim.now, "pfc", "pause" if pause else "resume",
                switch=self.switch.name, congested_ports=len(self._congested),
            )
        for port in self.switch.ports:
            if port.link is None:
                continue
            peer = port.link.peer(port)
            delay = port.link.delay_ps + PAUSE_REACTION_PS
            if pause:
                self.pause_frames_sent += 1
                self.sim.after(delay, peer.pause)
            else:
                self.resume_frames_sent += 1
                self.sim.after(delay, peer.resume)

    @property
    def currently_pausing(self) -> bool:
        return bool(self._congested)


def enable_pfc(
    switch: NetworkSwitch,
    *,
    xoff_bytes: int = 256 * 1024,
    xon_bytes: int = 128 * 1024,
) -> PfcController:
    """Attach PFC to a switch's output queues.

    Defaults follow common 100 G deployments: XOFF at 256 kB, XON at
    half that — well above DCQCN's ECN threshold so CNPs fire first and
    PFC stays a safety net (the DCQCN paper's intended configuration).
    """
    return PfcController(switch, xoff_bytes=xoff_bytes, xon_bytes=xon_bytes)
