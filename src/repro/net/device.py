"""Devices and ports.

A :class:`Device` is anything with ports: a switch, a host, Marlin's
programmable switch, or the FPGA NIC.  A :class:`Port` owns an output queue
and a transmitter that serializes packets onto the attached link at the
port rate.  Reception is pushed to ``Device.receive(packet, port)``.
"""

from __future__ import annotations

import itertools
from typing import Optional, TYPE_CHECKING

from repro.errors import ConfigError
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.units import RATE_100G, serialization_time_ps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link

_device_uid = itertools.count()


class Port:
    """One device port: an output queue plus a rate-limited transmitter."""

    def __init__(
        self,
        device: "Device",
        index: int,
        *,
        rate_bps: int = RATE_100G,
        queue: Optional[DropTailQueue] = None,
    ) -> None:
        self.device = device
        self.index = index
        self.rate_bps = rate_bps
        self.queue = queue if queue is not None else DropTailQueue(capacity_bytes=2**20)
        self.link: Optional["Link"] = None
        self._busy = False
        #: PFC: while paused, the transmitter holds frames in its queue.
        self.paused = False
        self.pause_events = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0

    @property
    def sim(self) -> Simulator:
        return self.device.sim

    @property
    def name(self) -> str:
        return f"{self.device.name}.p{self.index}"

    # -- transmit path ------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; returns False if dropped."""
        if self.link is None:
            raise ConfigError(f"port {self.name} is not connected to a link")
        accepted = self.queue.enqueue(packet)
        if accepted and not self._busy and not self.paused:
            self._transmit_next()
        return accepted

    def pause(self) -> None:
        """PFC XOFF: stop dequeuing new frames (the one on the wire
        finishes).  Frames accumulate in the output queue meanwhile."""
        if not self.paused:
            self.paused = True
            self.pause_events += 1

    def resume(self) -> None:
        """PFC XON: resume transmission."""
        if not self.paused:
            return
        self.paused = False
        if not self._busy and not self.queue.empty:
            self._transmit_next()

    def _transmit_next(self) -> None:
        if self.paused:
            self._busy = False
            return
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx_time = serialization_time_ps(packet.size_bytes, self.rate_bps)
        self.tx_packets += 1
        self.tx_bytes += packet.size_bytes
        assert self.link is not None
        self.link.carry(self, packet, depart_ps=self.sim.now + tx_time)
        self.sim.after(tx_time, self._transmit_next)

    # -- receive path -------------------------------------------------------

    def deliver(self, packet: Packet) -> None:
        """Called by the link when a packet finishes arriving at this port."""
        self.rx_packets += 1
        self.rx_bytes += packet.size_bytes
        self.device.receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name} rate={self.rate_bps}>"


class Device:
    """Base class for anything with ports.  Subclasses implement
    :meth:`receive` to process arriving packets."""

    def __init__(self, sim: Simulator, name: Optional[str] = None) -> None:
        self.sim = sim
        self.uid = next(_device_uid)
        self.name = name if name is not None else f"dev{self.uid}"
        self.ports: list[Port] = []

    def add_port(
        self,
        *,
        rate_bps: int = RATE_100G,
        queue: Optional[DropTailQueue] = None,
    ) -> Port:
        port = Port(self, len(self.ports), rate_bps=rate_bps, queue=queue)
        self.ports.append(port)
        return port

    def receive(self, packet: Packet, port: Port) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}>"
