"""Devices and ports.

A :class:`Device` is anything with ports: a switch, a host, Marlin's
programmable switch, or the FPGA NIC.  A :class:`Port` owns an output queue
and a transmitter that serializes packets onto the attached link at the
port rate.  Reception is pushed to ``Device.receive(packet, port)``.
"""

from __future__ import annotations

import itertools
from typing import Optional, TYPE_CHECKING

from repro.errors import ConfigError
from repro.net import datapath
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.units import RATE_100G, serialization_time_ps

try:  # the compiled port core (see repro.sim._cengine: CPort)
    from repro.sim import _cengine as _C
except Exception:  # pragma: no cover - extension not built
    _C = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link

_device_uid = itertools.count()


class _PyPort:
    """One device port: an output queue plus a rate-limited transmitter."""

    __slots__ = (
        "device", "index", "rate_bps", "queue", "link",
        "_busy", "_busy_until_ps", "paused", "pause_events",
        "tx_packets", "tx_bytes", "rx_packets", "rx_bytes",
        "sim", "_ser_ps", "_receive",
    )

    def __init__(
        self,
        device: "Device",
        index: int,
        *,
        rate_bps: int = RATE_100G,
        queue: Optional[DropTailQueue] = None,
    ) -> None:
        self.device = device
        self.index = index
        self.rate_bps = rate_bps
        self.queue = queue if queue is not None else DropTailQueue(capacity_bytes=2**20)
        self.link: Optional["Link"] = None
        #: True while a ``_transmit_next`` wakeup is scheduled (the
        #: transmit chain is live).  When the queue drains, the chain
        #: parks instead of scheduling an empty wakeup, and
        #: ``_busy_until_ps`` remembers until when the wire is occupied.
        self._busy = False
        self._busy_until_ps = 0
        #: PFC: while paused, the transmitter holds frames in its queue.
        self.paused = False
        self.pause_events = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        #: Hot-path aliases: the simulator (ports never migrate between
        #: devices) and the shared per-rate serialization table (see
        #: :mod:`repro.net.datapath`).
        self.sim: Simulator = device.sim
        self._ser_ps = datapath.shared().ser_table(rate_bps)
        self._receive = device.receive

    @property
    def name(self) -> str:
        return f"{self.device.name}.p{self.index}"

    # -- transmit path ------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; returns False if dropped."""
        if self.link is None:
            raise ConfigError(f"port {self.name} is not connected to a link")
        accepted = self.queue.enqueue(packet)
        if accepted and not self._busy and not self.paused:
            if self.sim.now >= self._busy_until_ps:
                self._transmit_next()
            else:
                # The wire is still draining the previous frame (the
                # chain parked on an empty queue): wake exactly when it
                # frees instead of having polled at every frame end.
                self._busy = True
                self.sim.at(self._busy_until_ps, self._transmit_next)
        return accepted

    def pause(self) -> None:
        """PFC XOFF: stop dequeuing new frames (the one on the wire
        finishes).  Frames accumulate in the output queue meanwhile."""
        if not self.paused:
            self.paused = True
            self.pause_events += 1

    def resume(self) -> None:
        """PFC XON: resume transmission."""
        if not self.paused:
            return
        self.paused = False
        if not self._busy and not self.queue.empty:
            if self.sim.now >= self._busy_until_ps:
                self._transmit_next()
            else:
                self._busy = True
                self.sim.at(self._busy_until_ps, self._transmit_next)

    def _transmit_next(self) -> None:
        if self.paused:
            self._busy = False
            return
        queue = self.queue
        packet = queue.dequeue()
        if packet is None:
            self._busy = False
            return
        size = packet.size_bytes
        tx_time = self._ser_ps.get(size)
        if tx_time is None:
            tx_time = serialization_time_ps(size, self.rate_bps)
            self._ser_ps[size] = tx_time
        self.tx_packets += 1
        self.tx_bytes += size
        depart_ps = self.sim.now + tx_time
        self.link.carry(self, packet, depart_ps=depart_ps)
        self._busy_until_ps = depart_ps
        if queue._queue:
            # More frames waiting: keep the transmit chain hot.
            self._busy = True
            self.sim.after(tx_time, self._transmit_next)
        else:
            # Queue drained: park instead of scheduling a wakeup that
            # would usually find nothing to do.  ``send``/``resume``
            # restart the chain no earlier than ``_busy_until_ps``.
            self._busy = False

    # -- receive path -------------------------------------------------------

    def deliver(self, packet: Packet) -> None:
        """Called by the link when a packet finishes arriving at this port."""
        self.rx_packets += 1
        self.rx_bytes += packet.size_bytes
        self._receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name} rate={self.rate_bps}>"


def _simref_for(sim: Simulator):
    """A per-simulator SimRef for the C port's direct heap pushes.

    The compiled backend already hangs one off the instance (``_cref``);
    python-backend simulators get a private one, shared by all their
    ports.  Either way the pushes are identical to ``sim.at``/``after``,
    so backend choice and port implementation stay orthogonal."""
    ref = getattr(sim, "_cref", None)
    if ref is None:
        ref = getattr(sim, "_portref", None)
        if ref is None:
            ref = _C.SimRef(sim)
            sim._portref = ref
    return ref


if _C is not None:
    class Port(_C.CPort):
        """One device port: an output queue plus a rate-limited
        transmitter.

        Compiled variant: send/transmit/deliver and the PFC park logic
        live in :class:`repro.sim._cengine.CPort`, scheduling follow-ups
        by pushing heap entries directly in C.  Event streams and
        counters are bit-identical to :class:`_PyPort` (the class used
        when the extension isn't built)."""

        __slots__ = ()

        def __init__(
            self,
            device: "Device",
            index: int,
            *,
            rate_bps: int = RATE_100G,
            queue: Optional[DropTailQueue] = None,
        ) -> None:
            if queue is None:
                queue = DropTailQueue(capacity_bytes=2**20)
            sim = device.sim
            _C.CPort.__init__(
                self, device, index, rate_bps, queue, sim, device.receive,
                datapath.shared().ser_table(rate_bps),
                serialization_time_ps, _simref_for(sim),
            )

        @property
        def name(self) -> str:
            return f"{self.device.name}.p{self.index}"

        def __repr__(self) -> str:  # pragma: no cover - debugging aid
            return f"<Port {self.name} rate={self.rate_bps}>"
else:  # pragma: no cover - exercised on builds without the extension
    Port = _PyPort


class Device:
    """Base class for anything with ports.  Subclasses implement
    :meth:`receive` to process arriving packets."""

    def __init__(self, sim: Simulator, name: Optional[str] = None) -> None:
        self.sim = sim
        self.uid = next(_device_uid)
        self.name = name if name is not None else f"dev{self.uid}"
        self.ports: list[Port] = []

    def add_port(
        self,
        *,
        rate_bps: int = RATE_100G,
        queue: Optional[DropTailQueue] = None,
    ) -> Port:
        port = Port(self, len(self.ports), rate_bps=rate_bps, queue=queue)
        self.ports.append(port)
        return port

    def receive(self, packet: Packet, port: Port) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}>"
