"""Marlin (EuroSys '25) reproduction: high-throughput CC testing, simulated.

The public API mirrors the paper's operator surface:

>>> from repro import ControlPlane, TestConfig
>>> cp = ControlPlane()
>>> tester = cp.deploy(TestConfig(cc_algorithm="dctcp", n_test_ports=2))
>>> cp.wire_loopback_fabric()           # the testbed's intermediate switch
>>> cp.start_flows(size_packets=200, pattern="pairs")
>>> cp.run(duration_ps=10**9)           # 1 ms
>>> tester.fct.stats().count >= 1
True

Subpackages: ``sim`` (event engine), ``net`` (links/switches/queues),
``cc`` (CC algorithm modules), ``pswitch`` (programmable-switch model),
``fpga`` (FPGA-NIC model), ``core`` (the tester + control plane),
``reference`` (ns-3-style and ConnectX-style oracles), ``baselines``
(alternative tester architectures), ``workload``, ``fluid``, ``measure``.
"""

from repro.core import (
    ControlPlane,
    MarlinTester,
    TestConfig,
    amplification_report,
    device_characteristics_table,
    max_generated_rate_bps,
    tester_requirements_table,
)
from repro.cc import (
    CCAlgorithm,
    available as available_cc,
    create as create_cc,
    register as register_cc,
)
from repro.parallel import CampaignRunner
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "ControlPlane",
    "MarlinTester",
    "TestConfig",
    "Simulator",
    "CampaignRunner",
    "CCAlgorithm",
    "available_cc",
    "create_cc",
    "register_cc",
    "amplification_report",
    "device_characteristics_table",
    "max_generated_rate_bps",
    "tester_requirements_table",
    "__version__",
]
