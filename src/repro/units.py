"""Units and line-rate arithmetic used throughout the Marlin reproduction.

The simulation clock is an integer count of **picoseconds**.  Integers keep
event ordering exact: a 64-byte frame at 100 Gbps serializes in exactly
5120 ps, and one 322 MHz FPGA clock cycle is 3105 ps (truncated), so no
floating-point drift can reorder events between runs.

The module also centralizes the Ethernet framing arithmetic the paper relies
on (Section 3.3): packets-per-second figures such as 148.8 Mpps for 64-byte
frames and 8.127 Mpps for 1518-byte frames include the 8-byte preamble and
12-byte inter-frame gap.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

PICOSECOND = 1
NANOSECOND = 1_000
MICROSECOND = 1_000_000
MILLISECOND = 1_000_000_000
SECOND = 1_000_000_000_000

#: Mnemonic aliases used in experiment scripts.
PS = PICOSECOND
NS = NANOSECOND
US = MICROSECOND
MS = MILLISECOND
S = SECOND


def seconds(t_ps: int) -> float:
    """Convert a picosecond timestamp to float seconds (for reporting only)."""
    return t_ps / SECOND


def microseconds(t_ps: int) -> float:
    """Convert a picosecond timestamp to float microseconds."""
    return t_ps / MICROSECOND


# --- data rate -------------------------------------------------------------

BITS_PER_BYTE = 8

KBPS = 1_000
MBPS = 1_000_000
GBPS = 1_000_000_000
TBPS = 1_000_000_000_000

#: Port speed used everywhere in the paper.
RATE_100G = 100 * GBPS

# --- Ethernet framing ------------------------------------------------------

#: Preamble + start-of-frame delimiter.
ETH_PREAMBLE_BYTES = 8
#: Minimum inter-frame gap.
ETH_IFG_BYTES = 12
#: Total per-frame overhead on the wire.
ETH_OVERHEAD_BYTES = ETH_PREAMBLE_BYTES + ETH_IFG_BYTES

#: Minimum Ethernet frame (the size of SCHE/INFO/ACK packets in Marlin).
MIN_FRAME_BYTES = 64
#: RoCE MTU under the default Ethernet MTU (Section 3.3).
ROCE_MTU_BYTES = 1024
#: Standard Ethernet MTU frame used for the 1.8 Tbps theoretical bound.
ETH_MTU_BYTES = 1518

#: FPGA internal clock (Xilinx Alveo U280 / OpenNIC shell).
FPGA_CLOCK_HZ = 322_000_000
#: Duration of one FPGA clock cycle in picoseconds (truncated).
FPGA_CYCLE_PS = SECOND // FPGA_CLOCK_HZ

#: Tofino-class forwarding capacity (Section 2.1).
TOFINO_PIPELINE_MPPS = 2_400


def wire_bits(frame_bytes: int) -> int:
    """Bits a frame occupies on the wire, including preamble and IFG."""
    if frame_bytes <= 0:
        raise ValueError(f"frame_bytes must be positive, got {frame_bytes}")
    return (frame_bytes + ETH_OVERHEAD_BYTES) * BITS_PER_BYTE


def serialization_time_ps(frame_bytes: int, rate_bps: int) -> int:
    """Time to put a frame on the wire at ``rate_bps``, in picoseconds.

    Rounds up so that back-to-back transmissions can never exceed line rate.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate_bps must be positive, got {rate_bps}")
    bits = wire_bits(frame_bytes)
    return -(-bits * SECOND // rate_bps)  # ceil division


def line_rate_pps(frame_bytes: int, rate_bps: int = RATE_100G) -> float:
    """Packets per second at line rate for a given frame size.

    ``line_rate_pps(64)`` is 148.8 Mpps and ``line_rate_pps(1518)`` is
    8.127 Mpps on a 100 Gbps port, matching the paper's Section 3.3 figures.
    """
    return rate_bps / wire_bits(frame_bytes)


def line_rate_interval_ps(frame_bytes: int, rate_bps: int = RATE_100G) -> int:
    """Inter-packet interval at line rate, in picoseconds (rounded up)."""
    return serialization_time_ps(frame_bytes, rate_bps)


def goodput_bps(frame_bytes: int, payload_bytes: int, rate_bps: int = RATE_100G) -> float:
    """Payload throughput achievable at line rate for a given frame size."""
    if payload_bytes < 0 or payload_bytes > frame_bytes:
        raise ValueError(
            f"payload_bytes must be within [0, frame_bytes], got {payload_bytes}"
        )
    return line_rate_pps(frame_bytes, rate_bps) * payload_bytes * BITS_PER_BYTE


def format_rate(rate_bps: float) -> str:
    """Human-readable rate, e.g. ``1.20 Tbps`` or ``98.4 Gbps``."""
    if rate_bps >= TBPS:
        return f"{rate_bps / TBPS:.2f} Tbps"
    if rate_bps >= GBPS:
        return f"{rate_bps / GBPS:.2f} Gbps"
    if rate_bps >= MBPS:
        return f"{rate_bps / MBPS:.2f} Mbps"
    return f"{rate_bps / KBPS:.2f} Kbps"


def format_time(t_ps: int) -> str:
    """Human-readable duration, e.g. ``12.5 us``."""
    if t_ps >= SECOND:
        return f"{t_ps / SECOND:.3f} s"
    if t_ps >= MILLISECOND:
        return f"{t_ps / MILLISECOND:.3f} ms"
    if t_ps >= MICROSECOND:
        return f"{t_ps / MICROSECOND:.3f} us"
    return f"{t_ps / NANOSECOND:.3f} ns"
