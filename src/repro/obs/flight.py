"""The flight recorder: a bounded ring of structured sim events.

A test platform is only as good as its ability to explain a bad run.
The :class:`FlightRecorder` keeps the last ``capacity`` *notable* events
of a simulation — queue drops, ECN marks, PFC PAUSE/RESUME, CC rate
transitions, timer churn, heap compactions — in a bounded
``collections.deque``, and dumps them as JSON when a run dies, so every
failed campaign shard ships a post-mortem instead of a bare traceback.

Design constraints (the PR 3 contract still holds):

* **Zero cost when off.**  Components carry a ``_flight`` attribute
  that defaults to ``None`` at class level; every hook lives inside an
  already-rare branch (the drop path, the mark path, a PAUSE
  transition), so an unattached simulation executes the same hot-path
  bytecode as before.  Attachment is explicit (:func:`attach` /
  :func:`attach_control_plane`) and a no-op when no recorder is
  installed.
* **Bounded.**  The ring holds ``capacity`` events; older events fall
  off the back.  ``events_recorded`` keeps the true total so a dump
  says how much history was shed.
* **Crash-safe.**  A recorder created with ``spool_path`` rewrites its
  ring to disk at most every ``spool_interval_s`` wall seconds (plus
  once at creation), so a worker that segfaults, is OOM-killed, or is
  terminated past its deadline still leaves its last spooled snapshot
  behind — the parent cannot ask a dead process to introspect itself.
* **Deterministic.**  Recording only *reads* model state; enabling the
  recorder never schedules events or perturbs a simulation (property
  tests hold runs event-identical with the recorder on).

Worker wiring mirrors :mod:`repro.obs.heartbeat`: the campaign pool
initializer calls :func:`configure_autodump` once per worker process;
:func:`begin_task` / :func:`end_task` bracket each task, installing a
per-task recorder that spools to
``<dir>/flight-task<index>.json``.  Successful tasks remove their spool
file; failed ones finalize it with the failure status.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Any, Optional, Union

#: Default ring capacity: enough tail history to see the minutes before
#: a death without unbounded memory.
DEFAULT_CAPACITY = 4096

#: Default minimum wall-clock spacing between spool rewrites.
DEFAULT_SPOOL_INTERVAL_S = 0.25

#: Event categories the stock hooks emit (dumps may carry others).
CATEGORIES = ("queue", "switch", "pfc", "cc", "timer", "engine", "worker", "solver")

PathLike = Union[str, Path]


class FlightRecorder:
    """Bounded ring buffer of ``(seq, time_ps, wall_s, category, name,
    fields)`` events with optional crash-spooling to disk."""

    __slots__ = (
        "capacity",
        "enqueues",
        "meta",
        "events_recorded",
        "created_unix",
        "sim",
        "_ring",
        "_clock",
        "_t0",
        "_spool_path",
        "_spool_interval_s",
        "_last_spool",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        enqueues: bool = False,
        spool_path: Optional[PathLike] = None,
        spool_interval_s: float = DEFAULT_SPOOL_INTERVAL_S,
        meta: Optional[dict[str, Any]] = None,
        clock=time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flight recorder needs capacity >= 1, got {capacity}")
        self.capacity = capacity
        #: Opt-in per-packet enqueue events (hot-path; off by default so
        #: an attached recorder still only fires on rare branches).
        self.enqueues = enqueues
        self.meta: dict[str, Any] = dict(meta or {})
        self.events_recorded = 0
        self.created_unix = time.time()
        #: Clock source for :meth:`note` — set by :func:`attach` so
        #: components without a simulator reference (queues) still stamp
        #: events with sim time.
        self.sim = None
        self._ring: deque[tuple] = deque(maxlen=capacity)
        self._clock = clock
        self._t0 = clock()
        self._spool_path = Path(spool_path) if spool_path is not None else None
        self._spool_interval_s = spool_interval_s
        self._last_spool = float("-inf")
        if self._spool_path is not None:
            # Spool immediately: even an instant death leaves evidence.
            self.spool()

    # -- recording -----------------------------------------------------------

    def record(self, time_ps: int, category: str, name: str, **fields: Any) -> None:
        """Append one event.  ``time_ps`` is sim time (or a step count
        for non-event-driven sources); ``fields`` must be JSON-safe."""
        self.events_recorded += 1
        wall = self._clock() - self._t0
        self._ring.append((self.events_recorded, time_ps, wall, category, name, fields))
        if self._spool_path is not None and wall - self._last_spool >= self._spool_interval_s:
            self.spool()

    def note(self, category: str, name: str, **fields: Any) -> None:
        """:meth:`record` stamped with the attached simulator's clock
        (``-1`` when no simulator is attached) — for components like
        queues that do not hold a simulator reference themselves."""
        sim = self.sim
        self.record(sim.now if sim is not None else -1, category, name, **fields)

    def __len__(self) -> int:
        return len(self._ring)

    # -- reading / serialization --------------------------------------------

    def events(self) -> list[dict[str, Any]]:
        """The ring's events, oldest first, as JSON-shaped dicts."""
        return [
            {
                "seq": seq,
                "time_ps": time_ps,
                "wall_s": wall_s,
                "category": category,
                "name": name,
                "fields": fields,
            }
            for seq, time_ps, wall_s, category, name, fields in self._ring
        ]

    def to_payload(
        self, *, status: str = "running", error: Optional[str] = None
    ) -> dict[str, Any]:
        """The dump document (see ``docs/OBSERVABILITY.md`` for schema)."""
        return {
            "schema": 1,
            "kind": "flight_recorder_dump",
            "status": status,
            "error": error,
            "pid": os.getpid(),
            "created_unix": self.created_unix,
            "capacity": self.capacity,
            "events_recorded": self.events_recorded,
            "events_dropped": self.events_recorded - len(self._ring),
            "meta": self.meta,
            "events": self.events(),
        }

    def dump(
        self,
        path: PathLike,
        *,
        status: str = "dumped",
        error: Optional[str] = None,
    ) -> Path:
        """Write the ring to ``path`` as JSON and return the path."""
        path = Path(path)
        payload = self.to_payload(status=status, error=error)
        path.write_text(json.dumps(payload, indent=1, default=str) + "\n")
        return path

    def spool(self) -> Optional[Path]:
        """Rewrite the spool file now (no-op without ``spool_path``)."""
        if self._spool_path is None:
            return None
        self._last_spool = self._clock() - self._t0
        try:
            return self.dump(self._spool_path, status="running")
        except OSError:  # a torn-down results dir must never kill a task
            return None

    def discard_spool(self) -> None:
        """Remove the spool file (a successful run needs no post-mortem)."""
        if self._spool_path is not None:
            try:
                self._spool_path.unlink()
            except OSError:
                pass


def load_dump(path: PathLike) -> dict[str, Any]:
    """Read one dump file back (schema-checked superficially)."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "flight_recorder_dump":
        raise ValueError(f"{path} is not a flight-recorder dump")
    return payload


# -- process-wide installation (mirrors repro.obs.heartbeat) -------------------

_RECORDER: Optional[FlightRecorder] = None

#: Worker-side autodump settings installed by the campaign pool
#: initializer: ``{"dir": str, "capacity": int, "spool_interval_s": float,
#: "enqueues": bool}`` or None when post-mortems are not requested.
_AUTODUMP: Optional[dict[str, Any]] = None


def install(recorder: FlightRecorder) -> FlightRecorder:
    """Make ``recorder`` the process-wide current recorder."""
    global _RECORDER
    _RECORDER = recorder
    return recorder


def uninstall() -> None:
    global _RECORDER
    _RECORDER = None


def current() -> Optional[FlightRecorder]:
    """The installed recorder, or None (hooks and attach no-op on None)."""
    return _RECORDER


def configure_autodump(
    dump_dir: Optional[PathLike],
    *,
    capacity: int = DEFAULT_CAPACITY,
    spool_interval_s: float = DEFAULT_SPOOL_INTERVAL_S,
    enqueues: bool = False,
) -> None:
    """Arm (or with ``None`` disarm) per-task post-mortem recording for
    this process; campaign workers get this from the pool initializer."""
    global _AUTODUMP
    if dump_dir is None:
        _AUTODUMP = None
        return
    _AUTODUMP = {
        "dir": str(dump_dir),
        "capacity": capacity,
        "spool_interval_s": spool_interval_s,
        "enqueues": enqueues,
    }


def autodump_config() -> Optional[dict[str, Any]]:
    return dict(_AUTODUMP) if _AUTODUMP is not None else None


def task_dump_path(dump_dir: PathLike, task_index: int) -> Path:
    """Canonical per-task dump location inside a campaign results dir."""
    return Path(dump_dir) / f"flight-task{task_index:05d}.json"


def begin_task(task_index: int) -> Optional[FlightRecorder]:
    """Create, install, and spool a per-task recorder (None when
    autodump is not configured).  Called by the campaign runner around
    every task, worker-side and inline."""
    if _AUTODUMP is None:
        return None
    recorder = FlightRecorder(
        _AUTODUMP["capacity"],
        enqueues=_AUTODUMP["enqueues"],
        spool_path=task_dump_path(_AUTODUMP["dir"], task_index),
        spool_interval_s=_AUTODUMP["spool_interval_s"],
        meta={"task": task_index, "pid": os.getpid()},
    )
    install(recorder)
    recorder.record(0, "worker", "task_start", task=task_index)
    return recorder


def end_task(
    recorder: Optional[FlightRecorder], *, ok: bool, error: Optional[str] = None
) -> None:
    """Finalize a task's recorder: failures keep their dump (finalized
    with the failure status); successes remove the spool file."""
    if recorder is None:
        return
    uninstall()
    if ok:
        recorder.discard_spool()
        return
    recorder.record(0, "worker", "task_error", error=error)
    if recorder._spool_path is not None:
        try:
            recorder.dump(recorder._spool_path, status="exception", error=error)
        except OSError:
            pass


# -- attachment ----------------------------------------------------------------


def attach(
    *,
    sim=None,
    queues=(),
    switches=(),
    pfc=None,
    nic=None,
    solver=None,
    recorder: Optional[FlightRecorder] = None,
) -> Optional[FlightRecorder]:
    """Point components' ``_flight`` hooks at a recorder.

    Uses the installed recorder when ``recorder`` is None; returns the
    recorder used, or None (having touched nothing) when neither exists
    — so model code can call this unconditionally at zero cost.
    """
    target = recorder if recorder is not None else _RECORDER
    if target is None:
        return None
    if sim is not None:
        sim._flight = target
        if target.sim is None:
            target.sim = sim
    for queue in queues:
        queue._flight = target
    for switch in switches:
        switch._flight = target
        for port in switch.ports:
            port.queue._flight = target
            if not getattr(port.queue, "flight_label", ""):
                port.queue.flight_label = f"{switch.name}:p{port.index}"
    if pfc is not None:
        pfc._flight = target
    if nic is not None:
        nic._flight = target
    if solver is not None:
        solver._flight = target
    return target


def attach_control_plane(cp, recorder: Optional[FlightRecorder] = None):
    """One call hooks everything a deployed control plane owns: the
    engine, the fabric switch (and its queues), and the tester NIC.
    A no-op returning None when no recorder is installed."""
    target = recorder if recorder is not None else _RECORDER
    if target is None:
        return None
    switches = [cp.fabric] if cp.fabric is not None else []
    nic = cp.tester.nic if cp.tester is not None else None
    return attach(sim=cp.sim, switches=switches, nic=nic, recorder=target)
