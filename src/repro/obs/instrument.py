"""Bind model components into a :class:`MetricsRegistry`.

The model's hot paths already count everything interesting as plain
``int`` attributes (queue stats, FIFO stats, scheduler counters, pool
stats — readable "like hardware registers").  These helpers register
*lazy bindings* over those attributes: the registry stores a callable
and reads it at collection time, so instrumentation adds **zero**
instructions to the simulation hot path — which is what makes the
``obs_overhead`` bench and the determinism property test trivially
safe.

All helpers are idempotent (re-binding replaces the callable) and
return the registry for chaining.  ``instrument_control_plane`` is the
one-call entry point used by the CLI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control_plane import ControlPlane
    from repro.core.tester import MarlinTester
    from repro.fluid.solver import ColumnarFluidSolver
    from repro.fpga.fifos import Fifo
    from repro.fpga.logger import QdmaLogger
    from repro.net.pfc import PfcController
    from repro.net.queue import DropTailQueue
    from repro.net.switch import NetworkSwitch
    from repro.net.packet import PacketPool
    from repro.sim.engine import Simulator


def instrument_engine(sim: "Simulator", registry: MetricsRegistry) -> MetricsRegistry:
    """Event-engine internals: dispatch/cancel counters and heap shape."""
    registry.bind("repro_sim_events_executed_total", lambda: sim.events_executed)
    registry.bind("repro_sim_events_cancelled_total", lambda: sim.events_cancelled)
    registry.bind("repro_sim_heap_compactions_total", lambda: sim.compactions)
    registry.bind("repro_sim_heap_entries", lambda: sim.pending_events, kind="gauge")
    registry.bind("repro_sim_heap_dead_entries", lambda: sim.dead_entries, kind="gauge")
    registry.bind("repro_sim_time_ps", lambda: sim.now, kind="gauge")
    return registry


def instrument_queue(
    queue: "DropTailQueue", registry: MetricsRegistry, **labels: str
) -> MetricsRegistry:
    """One output queue's enqueue/drop/ECN-mark registers."""
    stats = queue.stats
    registry.bind(
        "repro_queue_enqueued_packets_total", lambda: stats.enqueued_packets, **labels
    )
    registry.bind(
        "repro_queue_enqueued_bytes_total", lambda: stats.enqueued_bytes, **labels
    )
    registry.bind(
        "repro_queue_dropped_packets_total", lambda: stats.dropped_packets, **labels
    )
    registry.bind(
        "repro_queue_dropped_bytes_total", lambda: stats.dropped_bytes, **labels
    )
    registry.bind(
        "repro_queue_ecn_marked_packets_total",
        lambda: stats.ecn_marked_packets,
        **labels,
    )
    registry.bind(
        "repro_queue_backlog_bytes", lambda: queue.backlog_bytes, kind="gauge", **labels
    )
    registry.bind(
        "repro_queue_max_backlog_bytes",
        lambda: stats.max_backlog_bytes,
        kind="gauge",
        **labels,
    )
    return registry


def instrument_network_switch(
    switch: "NetworkSwitch", registry: MetricsRegistry
) -> MetricsRegistry:
    """A tested-network switch: forwarding plus every port's queue."""
    name = switch.name
    registry.bind(
        "repro_switch_forwarded_packets_total",
        lambda: switch.forwarded_packets,
        switch=name,
    )
    registry.bind(
        "repro_switch_dropped_no_route_total",
        lambda: switch.dropped_no_route,
        switch=name,
    )
    for port in switch.ports:
        instrument_queue(port.queue, registry, switch=name, port=str(port.index))
    return registry


def instrument_pfc(
    pfc: "PfcController", registry: MetricsRegistry, **labels: str
) -> MetricsRegistry:
    """PFC PAUSE/RESUME activity for one switch's controller."""
    labels.setdefault("switch", pfc.switch.name)
    registry.bind(
        "repro_pfc_pause_frames_total", lambda: pfc.pause_frames_sent, **labels
    )
    registry.bind(
        "repro_pfc_resume_frames_total", lambda: pfc.resume_frames_sent, **labels
    )
    registry.bind(
        "repro_pfc_congested_queues",
        lambda: len(pfc._congested),
        kind="gauge",
        **labels,
    )
    return registry


def instrument_fifo(
    fifo: "Fifo", registry: MetricsRegistry, **labels: str
) -> MetricsRegistry:
    """One hardware FIFO: push/pop/drop registers plus live occupancy."""
    labels.setdefault("fifo", fifo.name)
    stats = fifo.stats
    registry.bind("repro_fifo_pushed_total", lambda: stats.pushed, **labels)
    registry.bind("repro_fifo_popped_total", lambda: stats.popped, **labels)
    registry.bind("repro_fifo_dropped_total", lambda: stats.dropped, **labels)
    registry.bind("repro_fifo_depth", lambda: len(fifo), kind="gauge", **labels)
    registry.bind(
        "repro_fifo_max_depth", lambda: stats.max_depth, kind="gauge", **labels
    )
    return registry


def instrument_packet_pool(
    pool: "PacketPool", registry: MetricsRegistry
) -> MetricsRegistry:
    """The 64 B control-packet free-list pool."""
    registry.bind("repro_packet_pool_created_total", lambda: pool.created)
    registry.bind("repro_packet_pool_reused_total", lambda: pool.reused)
    registry.bind("repro_packet_pool_released_total", lambda: pool.released)
    registry.bind(
        "repro_packet_pool_free", lambda: len(pool._free), kind="gauge"
    )
    return registry


def instrument_qdma(
    logger: "QdmaLogger", registry: MetricsRegistry, **labels: str
) -> MetricsRegistry:
    """The QDMA logging path: records, uploads, bytes, batch state."""
    registry.bind("repro_qdma_records_total", lambda: logger.records_logged, **labels)
    registry.bind("repro_qdma_uploads_total", lambda: logger.uploads, **labels)
    registry.bind("repro_qdma_upload_bytes_total", lambda: logger.upload_bytes, **labels)
    registry.bind(
        "repro_qdma_pending_records", lambda: logger.pending_records, kind="gauge", **labels
    )
    registry.attach(logger.batch_records)
    return registry


def instrument_tester(
    tester: "MarlinTester", registry: MetricsRegistry
) -> MetricsRegistry:
    """The full tester: amplification path, schedulers, slow path, QDMA."""
    switch = tester.switch
    nic = tester.nic

    # Programmable-switch amplification path (SCHE -> DATA expansion,
    # ACK -> INFO compression, receiver logic).
    generator = switch.data_generator
    registry.bind("repro_pswitch_sche_accepted_total", lambda: generator.sche_accepted)
    registry.bind("repro_pswitch_sche_dropped_total", lambda: generator.sche_dropped)
    registry.bind("repro_pswitch_data_generated_total", lambda: generator.data_generated)
    receiver = switch.receiver
    registry.bind("repro_pswitch_acks_generated_total", lambda: receiver.acks_generated)
    registry.bind("repro_pswitch_nacks_generated_total", lambda: receiver.nacks_generated)
    registry.bind("repro_pswitch_cnps_generated_total", lambda: receiver.cnps_generated)
    registry.bind("repro_pswitch_ooo_dropped_total", lambda: receiver.ooo_dropped)
    info = switch.info_generator
    registry.bind("repro_pswitch_acks_compressed_total", lambda: info.acks_processed)
    registry.bind("repro_pswitch_infos_generated_total", lambda: info.infos_generated)
    registry.bind("repro_pswitch_unknown_packets_total", lambda: switch.unknown_packets)

    # FPGA NIC: RX FIFOs, per-port schedulers, slow path, timers.
    for fifo in nic.rx_fifos:
        instrument_fifo(fifo, registry, device="nic")
    for scheduler in nic.schedulers:
        port = str(scheduler.port_index)
        instrument_fifo(scheduler.sched_fifo, registry, device="nic", port=port)
        instrument_fifo(scheduler.prio_fifo, registry, device="nic", port=port)
        registry.bind(
            "repro_scheduler_ticks_total", lambda s=scheduler: s.ticks, port=port
        )
        registry.bind(
            "repro_scheduler_sche_emitted_total",
            lambda s=scheduler: s.sche_emitted,
            port=port,
        )
        registry.bind(
            "repro_scheduler_rtx_emitted_total",
            lambda s=scheduler: s.rtx_emitted,
            port=port,
        )
        registry.bind(
            "repro_scheduler_reschedules_total",
            lambda s=scheduler: s.skipped_pacing,
            port=port,
        )
        registry.bind(
            "repro_scheduler_descheduled_total",
            lambda s=scheduler: s.descheduled,
            port=port,
        )
    slow = nic.slow_path
    registry.bind("repro_slow_path_events_total", lambda: slow.events_processed)
    registry.bind("repro_slow_path_overruns_total", lambda: slow.overruns)
    registry.bind("repro_nic_infos_processed_total", lambda: nic.infos_processed)
    registry.bind("repro_nic_rmw_stalls_total", lambda: nic.rmw_stalls)
    registry.bind("repro_nic_flows_completed_total", lambda: len(tester.fct))
    instrument_qdma(nic.logger, registry)
    return registry


def instrument_fluid_solver(
    solver: "ColumnarFluidSolver", registry: MetricsRegistry, **labels: str
) -> MetricsRegistry:
    """The columnar fluid solver's step/population/compaction registers."""
    registry.bind("repro_fluid_steps_total", lambda: solver.steps_run, **labels)
    registry.bind("repro_fluid_flow_steps_total", lambda: solver.flow_steps, **labels)
    registry.bind("repro_fluid_flows_added_total", lambda: solver.flows_added, **labels)
    registry.bind(
        "repro_fluid_flows_completed_total", lambda: solver.flows_completed, **labels
    )
    registry.bind("repro_fluid_compactions_total", lambda: solver.compactions, **labels)
    registry.bind(
        "repro_fluid_active_flows", lambda: solver.n_active, kind="gauge", **labels
    )
    registry.bind(
        "repro_fluid_rows", lambda: solver.n_rows, kind="gauge", **labels
    )
    registry.bind(
        "repro_fluid_time_ps", lambda: solver.now_ps, kind="gauge", **labels
    )
    registry.bind(
        "repro_fluid_queue_bits_total",
        lambda: float(solver.queue_bits.sum()),
        kind="gauge",
        **labels,
    )
    return registry


def instrument_control_plane(
    cp: "ControlPlane",
    registry: Optional[MetricsRegistry] = None,
    *,
    pfc: Optional["PfcController"] = None,
) -> MetricsRegistry:
    """One call instruments everything a deployed control plane owns:
    engine, tester, fabric switch, packet pool, and optionally PFC."""
    from repro.net.packet import PACKET_POOL

    if registry is None:
        registry = MetricsRegistry()
    instrument_engine(cp.sim, registry)
    if cp.tester is not None:
        instrument_tester(cp.tester, registry)
    if cp.fabric is not None:
        instrument_network_switch(cp.fabric, registry)
    instrument_packet_pool(PACKET_POOL, registry)
    if pfc is not None:
        instrument_pfc(pfc, registry)
    return registry
