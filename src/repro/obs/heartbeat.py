"""Campaign telemetry: live heartbeats from simulation workers.

:class:`~repro.parallel.CampaignRunner` workers are black boxes until a
task returns; this module opens them up.  A worker process is configured
with a *sink* (a multiprocessing queue proxy, or any callable) by the
pool initializer; a running simulation then emits periodic
:class:`Heartbeat` snapshots — task id, sim-time progress, event count,
key counters — which the parent drains and renders live.

Two invariants keep telemetry from perturbing science:

* **No extra simulation events.**  :func:`run_with_heartbeats` slices a
  ``run(until_ps=...)`` horizon into wall-side chunks; the engine's
  guarantee that running to ``t1`` then ``t2`` equals running straight
  to ``t2`` means the event stream is bit-identical with heartbeats on
  or off — which is also why ``workers=1`` and ``workers=N`` campaigns
  stay bit-identical when only one of them streams telemetry.
* **Never block the simulation.**  Queue puts are non-blocking; a full
  or broken queue drops the heartbeat, never stalls the worker.

The module-level sink is per-process state: each pool worker (and the
inline runner path) executes one task at a time, exactly like
``repro.parallel.report_events``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.sim.engine import Simulator

#: Default number of heartbeat slices per simulation run: enough to see
#: progress, few enough that queue traffic stays negligible.
DEFAULT_SLICES = 8

Sink = Union[Callable[["Heartbeat"], None], Any]

_SINK: Optional[Sink] = None
_TASK_ID: int = -1


@dataclass(frozen=True)
class Heartbeat:
    """One telemetry snapshot from a running campaign task.

    Plain data (picklable) so it crosses the multiprocessing queue.
    """

    task_id: int
    pid: int
    sim_now_ps: int
    sim_until_ps: int
    events_executed: int
    wall_s: float
    counters: dict[str, Any] = field(default_factory=dict)
    final: bool = False

    @property
    def progress(self) -> float:
        """Fraction of the sim-time horizon completed, in [0, 1]."""
        if self.sim_until_ps <= 0:
            return 1.0 if self.final else 0.0
        return min(self.sim_now_ps / self.sim_until_ps, 1.0)


# -- worker-side configuration --------------------------------------------------


def configure(sink: Optional[Sink]) -> None:
    """Install the process-wide heartbeat sink (queue proxy or callable).
    ``None`` disables emission — :func:`run_with_heartbeats` then runs
    the simulation in one slice with zero overhead."""
    global _SINK
    _SINK = sink


def set_task(task_id: Optional[int]) -> None:
    """Tag subsequent heartbeats with the running task's campaign index."""
    global _TASK_ID
    _TASK_ID = -1 if task_id is None else task_id


def active() -> bool:
    return _SINK is not None


def emit(heartbeat: Heartbeat) -> None:
    """Deliver one heartbeat; drops (never blocks, never raises) when the
    sink is a full or broken queue."""
    sink = _SINK
    if sink is None:
        return
    if callable(sink):
        sink(heartbeat)
        return
    try:
        sink.put_nowait(heartbeat)
    except Exception:
        pass


# -- simulation driver -----------------------------------------------------------


def run_with_heartbeats(
    sim: Simulator,
    duration_ps: int,
    *,
    counters_fn: Optional[Callable[[], dict[str, Any]]] = None,
    n_slices: int = DEFAULT_SLICES,
) -> int:
    """Advance ``sim`` by ``duration_ps``, emitting heartbeats between
    slices.  Returns events executed.

    With no sink configured this is exactly one ``sim.run`` call; with a
    sink, the horizon is cut into ``n_slices`` equal slices and a
    heartbeat (including a ``counters_fn()`` snapshot) is emitted after
    each, plus a ``final=True`` heartbeat carrying the end-of-run
    snapshot.  Either way the simulation executes the same events in the
    same order.
    """
    until_ps = sim.now + duration_ps
    if _SINK is None:
        return sim.run(until_ps=until_ps)
    n_slices = max(n_slices, 1)
    start_wall = time.perf_counter()
    start_events = sim.events_executed
    pid = os.getpid()
    executed = 0
    for slice_index in range(n_slices):
        # Integer split with the exact horizon on the last slice.
        horizon = until_ps - (duration_ps * (n_slices - 1 - slice_index)) // n_slices
        executed += sim.run(until_ps=horizon)
        emit(
            Heartbeat(
                task_id=_TASK_ID,
                pid=pid,
                sim_now_ps=sim.now,
                sim_until_ps=until_ps,
                events_executed=sim.events_executed - start_events,
                wall_s=time.perf_counter() - start_wall,
                counters=counters_fn() if counters_fn is not None else {},
                final=False,
            )
        )
    emit(
        Heartbeat(
            task_id=_TASK_ID,
            pid=pid,
            sim_now_ps=sim.now,
            sim_until_ps=until_ps,
            events_executed=sim.events_executed - start_events,
            wall_s=time.perf_counter() - start_wall,
            counters=counters_fn() if counters_fn is not None else {},
            final=True,
        )
    )
    return executed
