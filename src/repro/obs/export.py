"""Metric export: JSON and Prometheus text exposition format.

``to_prometheus`` emits the text format scrapers understand
(`# TYPE` comments plus ``name{label="value"} number`` samples);
``parse_prometheus_text`` is the matching grammar-level parser, used by
the tests to prove the output round-trips and available to callers that
want to diff two snapshots.  ``write_metrics`` picks the format from the
file suffix, which is what backs the CLI ``--metrics-out`` flag.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Union

from repro.obs.metrics import MetricsRegistry, Number

PathLike = Union[str, Path]

#: Prometheus metric-name and label-name grammar (the exposition format's
#: EBNF, abbreviated): names are ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|Inf|NaN))$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(raw: str) -> str:
    """Map an arbitrary counter key (``switch.data_generated``) onto the
    Prometheus name grammar."""
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", raw)
    if not name or not _NAME_RE.fullmatch(name):
        name = "_" + name
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _format_value(value: Number) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry's current state in Prometheus text exposition format."""
    kinds = registry.kinds()
    lines: list[str] = []
    seen_type: set[str] = set()
    for sample in registry.collect():
        family = sample.name
        if sample.kind == "histogram":
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix):
                    family = family[: -len(suffix)]
                    break
        if family not in seen_type:
            seen_type.add(family)
            lines.append(f"# TYPE {family} {kinds.get(family, sample.kind)}")
        if sample.labels:
            label_text = ",".join(
                f'{key}="{_escape_label_value(str(value))}"'
                for key, value in sorted(sample.labels.items())
            )
            lines.append(f"{sample.name}{{{label_text}}} {_format_value(sample.value)}")
        else:
            lines.append(f"{sample.name} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def to_json(registry: MetricsRegistry, *, indent: int = 1) -> str:
    """The registry's flat snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True) + "\n"


def write_metrics(registry: MetricsRegistry, path: PathLike) -> Path:
    """Write the registry to ``path``: ``.prom``/``.txt`` selects the
    Prometheus text format, anything else JSON.  Returns the path."""
    path = Path(path)
    if path.suffix in (".prom", ".txt"):
        path.write_text(to_prometheus(registry))
    else:
        path.write_text(to_json(registry))
    return path


def parse_prometheus_text(text: str) -> list[tuple[str, dict[str, str], float]]:
    """Parse Prometheus text exposition format at the grammar level.

    Returns ``(name, labels, value)`` tuples in input order; raises
    :class:`ValueError` (with the offending line) on anything that does
    not match the sample or comment grammar.  This is a validator, not a
    full client: ``# HELP``/``# TYPE`` comments are checked for shape and
    skipped.
    """
    samples: list[tuple[str, dict[str, str], float]] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {line_no}: malformed comment {line!r}")
            if parts[1] == "TYPE" and not _NAME_RE.fullmatch(parts[2]):
                raise ValueError(f"line {line_no}: bad metric name {parts[2]!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample {line!r}")
        labels: dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            # Labels must tile the whole body: name="value" pairs joined
            # by commas (a trailing comma is legal in the format).
            pos = 0
            while pos < len(label_text):
                pair = _LABEL_RE.match(label_text, pos)
                if pair is None:
                    raise ValueError(
                        f"line {line_no}: malformed labels {label_text!r}"
                    )
                labels[pair.group(1)] = _unescape_label_value(pair.group(2))
                pos = pair.end()
                if pos < len(label_text):
                    if label_text[pos] != ",":
                        raise ValueError(
                            f"line {line_no}: malformed labels {label_text!r}"
                        )
                    pos += 1
        samples.append((match.group("name"), labels, float(match.group("value"))))
    return samples
