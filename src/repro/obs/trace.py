"""Chrome/Perfetto trace-event timelines for campaigns and runs.

The :mod:`repro.obs` counters say *how much*; this module says *when*.
It serializes everything the platform already knows about a run's
schedule — profiler spans, campaign worker lifetimes and retries,
heartbeats, and :mod:`repro.obs.flight` post-mortems — into the Chrome
trace-event JSON format, so one ``repro trace <campaign_dir>`` produces
a file that drops straight into https://ui.perfetto.dev (or
``chrome://tracing``) as a zoomable campaign timeline.

Only the *array-of-objects* flavor is emitted::

    {"traceEvents": [...], "displayTimeUnit": "ms", ...}

with the event phases we need:

* ``"X"`` — complete span (``ts`` + ``dur``, both µs): task executions,
  profiler owner spans;
* ``"i"`` — instant: heartbeats, flight-recorder events, terminal task
  failures;
* ``"C"`` — counter: per-task simulated-event progress from heartbeats;
* ``"M"`` — metadata: human names for the pid/tid rows.

Timestamps are microseconds relative to the campaign's start (``t0``),
pids are real worker pids, and tids are campaign task indices — so one
Perfetto row per worker process, one track per task it ran.

:func:`validate_chrome_trace` is the schema gate used by the tests and
CI: it accepts exactly what this module promises to emit, so a payload
that validates is known to load in Perfetto.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.obs.flight import load_dump

PathLike = Union[str, Path]

#: Canonical journal filename inside a campaign results directory.
CAMPAIGN_JOURNAL = "campaign.json"

_VALID_PHASES = frozenset("BEXiICPONDMsftbne")


# -- event constructors --------------------------------------------------------


def complete_event(
    name: str,
    *,
    ts_us: float,
    dur_us: float,
    pid: int,
    tid: int,
    cat: str = "task",
    args: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """A ``ph="X"`` span: something that started and took time."""
    event = {
        "name": name,
        "ph": "X",
        "ts": ts_us,
        "dur": max(dur_us, 0.0),
        "pid": pid,
        "tid": tid,
        "cat": cat,
    }
    if args:
        event["args"] = args
    return event


def instant_event(
    name: str,
    *,
    ts_us: float,
    pid: int,
    tid: int,
    cat: str = "event",
    scope: str = "t",
    args: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """A ``ph="i"`` marker: something that happened at one moment."""
    event = {
        "name": name,
        "ph": "i",
        "ts": ts_us,
        "pid": pid,
        "tid": tid,
        "cat": cat,
        "s": scope,
    }
    if args:
        event["args"] = args
    return event


def counter_event(
    name: str,
    *,
    ts_us: float,
    pid: int,
    values: dict[str, float],
    tid: int = 0,
    cat: str = "counter",
) -> dict[str, Any]:
    """A ``ph="C"`` sample: series values plotted as a counter track."""
    return {
        "name": name,
        "ph": "C",
        "ts": ts_us,
        "pid": pid,
        "tid": tid,
        "cat": cat,
        "args": dict(values),
    }


def metadata_event(
    kind: str, *, pid: int, name: str, tid: int = 0
) -> dict[str, Any]:
    """A ``ph="M"`` row label (``process_name`` / ``thread_name``)."""
    return {
        "name": kind,
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


# -- validation ----------------------------------------------------------------


def validate_chrome_trace(payload: Any) -> None:
    """Raise :class:`ValueError` unless ``payload`` is a well-formed
    Chrome trace-event document of the shape this module emits."""
    if not isinstance(payload, dict):
        raise ValueError(f"trace payload must be an object, got {type(payload).__name__}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload must carry a 'traceEvents' list")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} must be an object")
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _VALID_PHASES:
            raise ValueError(f"{where} has invalid phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where} needs a non-empty string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where} needs an integer '{key}'")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            raise ValueError(f"{where} needs a numeric 'ts' (µs)")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                raise ValueError(f"{where} ('X') needs a numeric 'dur' >= 0")
        if phase == "C" and not isinstance(event.get("args"), dict):
            raise ValueError(f"{where} ('C') needs an 'args' value mapping")
        if phase == "M" and not isinstance(event.get("args", {}).get("name"), str):
            raise ValueError(f"{where} ('M') needs args.name")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where} 'args' must be an object")


# -- profiler spans ------------------------------------------------------------


def spans_to_events(
    spans: Iterable[tuple[str, float, float]],
    *,
    pid: int = 0,
    tid: int = 0,
    cat: str = "profile",
) -> list[dict[str, Any]]:
    """Convert profiler ``(owner, start_s, dur_s)`` spans (see
    :meth:`repro.obs.profile.SimProfiler.spans`) to ``"X"`` events."""
    return [
        complete_event(
            owner,
            ts_us=start_s * 1e6,
            dur_us=dur_s * 1e6,
            pid=pid,
            tid=tid,
            cat=cat,
        )
        for owner, start_s, dur_s in spans
    ]


# -- campaign merge ------------------------------------------------------------


def _flight_dump_events(
    dump: dict[str, Any], *, t0: float, pid: int, tid: int
) -> list[dict[str, Any]]:
    """Flight-recorder ring events as instants on the task's track."""
    base_us = (float(dump.get("created_unix", t0)) - t0) * 1e6
    events = []
    for entry in dump.get("events", ()):
        fields = dict(entry.get("fields") or {})
        fields["time_ps"] = entry.get("time_ps")
        events.append(
            instant_event(
                f"{entry.get('category', '?')}.{entry.get('name', '?')}",
                ts_us=base_us + float(entry.get("wall_s", 0.0)) * 1e6,
                pid=pid,
                tid=tid,
                cat=f"flight.{entry.get('category', 'event')}",
                args=fields,
            )
        )
    return events


def campaign_trace_events(results_dir: PathLike) -> list[dict[str, Any]]:
    """Merge a campaign results directory into one trace-event list.

    Reads the runner's ``campaign.json`` journal (task lifetimes,
    retries, heartbeats) plus every ``flight-task*.json`` post-mortem
    dump alongside it.  Raises :class:`FileNotFoundError` when neither
    exists — an empty directory is a usage error, not an empty trace.
    """
    results_dir = Path(results_dir)
    journal_path = results_dir / CAMPAIGN_JOURNAL
    dump_paths = sorted(results_dir.glob("flight-task*.json"))
    if not journal_path.exists() and not dump_paths:
        raise FileNotFoundError(
            f"{results_dir} holds neither {CAMPAIGN_JOURNAL} nor flight-task*.json "
            "dumps; was the campaign run with a results dir?"
        )

    journal: dict[str, Any] = {}
    if journal_path.exists():
        journal = json.loads(journal_path.read_text())

    dumps = []
    for dump_path in dump_paths:
        try:
            dumps.append(load_dump(dump_path))
        except (ValueError, json.JSONDecodeError):
            continue  # half-written spool from a freshly killed worker

    # t0: the earliest instant anything recorded, so all ts stay >= 0.
    starts = [
        task["start_unix"]
        for task in journal.get("tasks", ())
        if task.get("start_unix") is not None
    ]
    starts.extend(float(d["created_unix"]) for d in dumps if d.get("created_unix"))
    if journal.get("created_unix") is not None:
        starts.append(float(journal["created_unix"]))
    t0 = min(starts) if starts else 0.0

    events: list[dict[str, Any]] = []
    pids_named: set[int] = set()
    tracks_named: set[tuple[int, int]] = set()

    def name_track(pid: int, tid: int) -> None:
        if pid not in pids_named:
            pids_named.add(pid)
            label = "campaign" if pid == 0 else f"worker pid {pid}"
            events.append(metadata_event("process_name", pid=pid, name=label))
        if (pid, tid) not in tracks_named:
            tracks_named.add((pid, tid))
            events.append(
                metadata_event("thread_name", pid=pid, tid=tid, name=f"task {tid}")
            )

    for task in journal.get("tasks", ()):
        tid = int(task["index"])
        pid = int(task.get("pid") or 0)
        name_track(pid, tid)
        args = {
            "ok": task.get("ok"),
            "attempts": task.get("attempts"),
            "events": task.get("events"),
            "error": task.get("error"),
            "error_kind": task.get("error_kind"),
        }
        args = {key: value for key, value in args.items() if value is not None}
        if task.get("start_unix") is not None:
            events.append(
                complete_event(
                    f"task {tid}",
                    ts_us=(float(task["start_unix"]) - t0) * 1e6,
                    dur_us=float(task.get("wall_s") or 0.0) * 1e6,
                    pid=pid,
                    tid=tid,
                    cat="task" if task.get("ok") else "task.failed",
                    args=args,
                )
            )
        else:
            # Crashed/timed-out terminally: no measured execution window,
            # so mark the failure at the campaign end instead.
            events.append(
                instant_event(
                    f"task {tid} {task.get('error_kind') or 'failed'}",
                    ts_us=float(journal.get("wall_s") or 0.0) * 1e6,
                    pid=pid,
                    tid=tid,
                    cat="task.failed",
                    scope="g",
                    args=args,
                )
            )

    for beat in journal.get("heartbeats", ()):
        tid = int(beat.get("task_id", -1))
        if tid < 0:
            continue
        pid = int(beat.get("pid") or 0)
        name_track(pid, tid)
        ts_us = (float(beat.get("recv_unix", t0)) - t0) * 1e6
        events.append(
            instant_event(
                "heartbeat.final" if beat.get("final") else "heartbeat",
                ts_us=ts_us,
                pid=pid,
                tid=tid,
                cat="heartbeat",
                args={
                    "sim_now_ps": beat.get("sim_now_ps"),
                    "sim_until_ps": beat.get("sim_until_ps"),
                    "events_executed": beat.get("events_executed"),
                },
            )
        )
        events.append(
            counter_event(
                f"task {tid} events",
                ts_us=ts_us,
                pid=pid,
                tid=tid,
                values={"events_executed": float(beat.get("events_executed") or 0)},
            )
        )

    for dump in dumps:
        meta = dump.get("meta") or {}
        tid = int(meta.get("task", -1))
        pid = int(dump.get("pid") or 0)
        if tid < 0:
            tid = 0
        name_track(pid, tid)
        events.extend(_flight_dump_events(dump, t0=t0, pid=pid, tid=tid))
        if dump.get("status") not in (None, "running"):
            events.append(
                instant_event(
                    f"flight dump ({dump['status']})",
                    ts_us=(float(dump.get("created_unix", t0)) - t0) * 1e6,
                    pid=pid,
                    tid=tid,
                    cat="flight",
                    scope="p",
                    args={"error": dump.get("error"),
                          "events_recorded": dump.get("events_recorded")},
                )
            )

    events.sort(key=lambda event: (event["ph"] != "M", event.get("ts", 0)))
    return events


# -- writing -------------------------------------------------------------------


def build_chrome_trace(
    events: list[dict[str, Any]], *, metadata: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """Wrap events in the trace-document envelope (and validate it)."""
    payload: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["otherData"] = metadata
    validate_chrome_trace(payload)
    return payload


def write_chrome_trace(
    path: PathLike,
    events: list[dict[str, Any]],
    *,
    metadata: Optional[dict[str, Any]] = None,
) -> Path:
    """Validate and write a trace document; returns the path."""
    path = Path(path)
    payload = build_chrome_trace(events, metadata=metadata)
    path.write_text(json.dumps(payload, indent=1, default=str) + "\n")
    return path
