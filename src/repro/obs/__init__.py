"""Cross-cutting observability: metrics, profiling, campaign telemetry.

Marlin's control plane exists to "retrieve data ... to evaluate the
network performance" (paper Section 3.2); ``repro.obs`` is that
retrieval layer for the tester *itself*.  Three pillars:

* :mod:`repro.obs.metrics` — a Counter/Gauge/Histogram registry with
  lazy attribute bindings, so instrumentation costs the hot path
  nothing (guarded by the ``obs_overhead`` bench);
* :mod:`repro.obs.profile` — opt-in wall-clock attribution per event
  callback owner (``sim.enable_profiling()`` / ``sim.profile()`` /
  ``repro report``);
* :mod:`repro.obs.heartbeat` — live progress snapshots streamed from
  campaign workers to the parent (``repro sweep`` renders them), with
  :mod:`repro.obs.manifest` stamping every run for comparability.

Export formats (JSON / Prometheus text) live in :mod:`repro.obs.export`.
"""

from repro.obs.export import (
    parse_prometheus_text,
    sanitize_metric_name,
    to_json,
    to_prometheus,
    write_metrics,
)
from repro.obs.flight import FlightRecorder
from repro.obs.heartbeat import Heartbeat, run_with_heartbeats
from repro.obs.instrument import (
    instrument_control_plane,
    instrument_engine,
    instrument_fifo,
    instrument_fluid_solver,
    instrument_network_switch,
    instrument_packet_pool,
    instrument_pfc,
    instrument_qdma,
    instrument_queue,
    instrument_tester,
)
from repro.obs.manifest import build_manifest, config_hash, environment, write_manifest
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Sample
from repro.obs.profile import ProfileReport, ProfileRow, SimProfiler

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "SimProfiler",
    "ProfileReport",
    "ProfileRow",
    "FlightRecorder",
    "Heartbeat",
    "run_with_heartbeats",
    "to_prometheus",
    "to_json",
    "write_metrics",
    "parse_prometheus_text",
    "sanitize_metric_name",
    "build_manifest",
    "write_manifest",
    "config_hash",
    "environment",
    "instrument_control_plane",
    "instrument_engine",
    "instrument_fifo",
    "instrument_fluid_solver",
    "instrument_network_switch",
    "instrument_packet_pool",
    "instrument_pfc",
    "instrument_qdma",
    "instrument_queue",
    "instrument_tester",
]
