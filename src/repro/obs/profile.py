"""Sim-time profiling: wall-clock attribution per event-callback owner.

Answers "which component is the hot path" as a measurement instead of a
guess.  When profiling is enabled on a :class:`~repro.sim.Simulator`
(``sim.enable_profiling()``), the engine times every event callback and
attributes the wall-clock cost to the callback's *owner*:

* a bound method is attributed to its class (``PortScheduler._tick``),
* a plain function to its qualified name (``bench.<locals>.tick``).

Profiling is strictly opt-in — the engine's default run loop is
untouched; a profiled run uses a separate loop so the unprofiled hot
path pays nothing (see ``docs/PERFORMANCE.md``).  Timing callbacks does
not change their order or the simulation clock, so profiled runs produce
bit-identical results.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable


def callback_owner(fn: Callable[..., Any]) -> str:
    """The attribution key for one event callback."""
    bound_self = getattr(fn, "__self__", None)
    if bound_self is not None:
        return f"{type(bound_self).__name__}.{fn.__name__}"
    return getattr(fn, "__qualname__", repr(fn))


@dataclass(frozen=True)
class ProfileRow:
    """Aggregate cost of one callback owner."""

    owner: str
    calls: int
    seconds: float

    @property
    def events_per_sec(self) -> float:
        return self.calls / self.seconds if self.seconds > 0 else 0.0


class SimProfiler:
    """Accumulates per-owner wall-clock cost; driven by the engine.

    With ``max_spans > 0`` the profiler also retains the last
    ``max_spans`` individual ``(owner, start_s, dur_s)`` callback spans
    (start relative to profiler creation) for timeline export via
    :func:`repro.obs.trace.spans_to_events`; the bound keeps a long run
    from hoarding memory, and the default of 0 keeps span retention out
    of the aggregate-only path entirely.
    """

    __slots__ = ("clock", "max_spans", "_table", "_spans", "_t0")

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        *,
        max_spans: int = 0,
    ) -> None:
        self.clock = clock
        self.max_spans = max_spans
        #: owner -> [calls, seconds]; a plain list so the engine's inner
        #: loop mutates in place without attribute churn.
        self._table: dict[str, list] = {}
        self._spans: deque = deque(maxlen=max_spans) if max_spans > 0 else deque(maxlen=0)
        self._t0 = clock()

    def record(self, fn: Callable[..., Any], seconds: float) -> None:
        owner = callback_owner(fn)
        cell = self._table.get(owner)
        if cell is None:
            self._table[owner] = [1, seconds]
        else:
            cell[0] += 1
            cell[1] += seconds
        if self.max_spans > 0:
            # record() runs right after the callback: the span ended now.
            self._spans.append((owner, self.clock() - self._t0 - seconds, seconds))

    def spans(self) -> list[tuple[str, float, float]]:
        """Retained ``(owner, start_s, dur_s)`` spans, oldest first."""
        return list(self._spans)

    def reset(self) -> None:
        self._table.clear()
        self._spans.clear()
        self._t0 = self.clock()

    def rows(self) -> list[ProfileRow]:
        """Owners sorted by cumulative wall time, hottest first."""
        return sorted(
            (
                ProfileRow(owner, cell[0], cell[1])
                for owner, cell in self._table.items()
            ),
            key=lambda row: row.seconds,
            reverse=True,
        )


@dataclass(frozen=True)
class ProfileReport:
    """A finished profile: rows plus run-level totals."""

    rows: tuple[ProfileRow, ...]

    @property
    def total_seconds(self) -> float:
        return sum(row.seconds for row in self.rows)

    @property
    def total_calls(self) -> int:
        return sum(row.calls for row in self.rows)

    def top(self, n: int) -> list[ProfileRow]:
        return list(self.rows[:n])

    def table(self, top_n: int = 15) -> str:
        """A fixed-width table of the ``top_n`` hottest owners."""
        total = self.total_seconds
        lines = [
            f"{'component':42s} {'calls':>10s} {'wall s':>9s} "
            f"{'share':>6s} {'events/s':>11s}"
        ]
        for row in self.top(top_n):
            share = row.seconds / total if total > 0 else 0.0
            lines.append(
                f"{row.owner:42.42s} {row.calls:>10,d} {row.seconds:>9.4f} "
                f"{share:>6.1%} {row.events_per_sec:>11,.0f}"
            )
        lines.append(
            f"{'TOTAL':42s} {self.total_calls:>10,d} {total:>9.4f} "
            f"{'100.0%':>6s}"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly form (manifests, bench reports)."""
        return {
            "total_seconds": self.total_seconds,
            "total_calls": self.total_calls,
            "rows": [
                {
                    "owner": row.owner,
                    "calls": row.calls,
                    "seconds": row.seconds,
                    "events_per_sec": row.events_per_sec,
                }
                for row in self.rows
            ],
        }
