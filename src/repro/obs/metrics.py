"""The metrics registry: counters, gauges, and log2 histograms.

Design constraints (ISSUE 3 / docs/OBSERVABILITY.md):

* **Near-zero hot-path cost.**  An instrument is a plain object with a
  ``value`` slot; incrementing is ``counter.value += 1`` — one attribute
  store, no dict lookup, no lock (simulations are single-threaded per
  process).  Even cheaper, most of the model's existing counters stay
  plain ``int`` attributes on their components and are *bound* into the
  registry lazily: :meth:`MetricsRegistry.bind` stores a callable that
  is only evaluated at collection time, so an instrumented simulation
  executes the exact same bytecode per event as an uninstrumented one.
* **Determinism.**  Nothing here schedules events or mutates model
  state; enabling metrics must never perturb a simulation (the property
  test in ``tests/test_obs.py`` holds runs event-for-event identical).
* **Labels.**  Instruments carry a frozen label mapping (e.g.
  ``port="3"``); the same metric name may exist once per label set,
  which is how per-port/per-queue families are modelled.

Export to JSON and Prometheus text format lives in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Union

Number = Union[int, float]

#: Histogram bucket upper bounds are ``2**i`` for ``i in range(N_BUCKETS)``
#: plus a final +Inf bucket — 1, 2, 4, ... 2**23 (~8.4M) covers queue
#: depths, batch sizes, and byte counts seen in practice.
DEFAULT_HISTOGRAM_BUCKETS = 24


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing value.

    Hot paths increment ``.value`` directly; :meth:`inc` is the readable
    form for cold paths.
    """

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def get(self) -> Number:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}{self.labels} {self.value}>"


class Gauge:
    """A value that can go up and down (backlogs, occupancies)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def get(self) -> Number:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}{self.labels} {self.value}>"


class Histogram:
    """A log2-bucketed histogram.

    Bucket ``i`` counts observations with ``value <= 2**i``; values past
    the last power of two land in the +Inf bucket.  Power-of-two bounds
    make :meth:`observe` one ``bit_length()`` call — no bisection, no
    float math — which is what lets the QDMA batch and task-wall
    histograms sit on warm paths.
    """

    __slots__ = ("name", "labels", "counts", "sum", "count", "_n_buckets")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        *,
        n_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    ) -> None:
        if n_buckets < 1:
            raise ValueError(f"histogram needs >= 1 bucket, got {n_buckets}")
        self.name = name
        self.labels = labels
        self._n_buckets = n_buckets
        #: counts[i] for bucket le=2**i; counts[n_buckets] is +Inf.
        self.counts: list[int] = [0] * (n_buckets + 1)
        self.sum: Number = 0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        self.count += 1
        self.sum += value
        if value <= 1:
            self.counts[0] += 1
            return
        ceiling = int(value)
        if ceiling < value:
            ceiling += 1
        index = (ceiling - 1).bit_length()
        if index >= self._n_buckets:
            index = self._n_buckets
        self.counts[index] += 1

    def bucket_bounds(self) -> list[float]:
        """Upper bounds, one per bucket, ending with +Inf."""
        return [float(1 << i) for i in range(self._n_buckets)] + [float("inf")]

    def cumulative_counts(self) -> list[int]:
        """Prometheus-style cumulative bucket counts (ends at ``count``)."""
        out: list[int] = []
        total = 0
        for value in self.counts:
            total += value
            out.append(total)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name}{self.labels} n={self.count} sum={self.sum}>"


Instrument = Union[Counter, Gauge, Histogram]


class _Binding:
    """A lazily-evaluated metric: a callable read at collection time.

    This is how the model's existing plain-``int`` component counters
    (queue stats, FIFO stats, scheduler counters, pool stats) join the
    registry without adding a single instruction to their hot paths.
    """

    __slots__ = ("name", "labels", "fn", "kind")

    def __init__(
        self, name: str, labels: dict[str, str], fn: Callable[[], Number], kind: str
    ) -> None:
        self.name = name
        self.labels = labels
        self.fn = fn
        self.kind = kind


class Sample:
    """One collected value: ``(name, labels, value, kind)``."""

    __slots__ = ("name", "labels", "value", "kind")

    def __init__(
        self, name: str, labels: dict[str, str], value: Number, kind: str
    ) -> None:
        self.name = name
        self.labels = labels
        self.value = value
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Sample {self.name}{self.labels} {self.value}>"


class MetricsRegistry:
    """Owns instruments and lazy bindings; produces samples on demand.

    Creation methods are get-or-create on ``(name, labels)``, so
    instrumentation helpers can be re-run idempotently.  Asking for an
    existing name with a different instrument kind raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}
        self._kinds: dict[str, str] = {}

    # -- creation --------------------------------------------------------------

    def _get_or_create(
        self, cls: type, name: str, labels: dict[str, str], **kwargs: Any
    ) -> Any:
        self._check_kind(name, cls.kind)
        key = (name, _label_key(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        instrument = cls(name, labels, **kwargs)
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        n_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, n_buckets=n_buckets)

    def bind(
        self,
        name: str,
        fn: Callable[[], Number],
        *,
        kind: str = "counter",
        **labels: str,
    ) -> None:
        """Register a lazily-read metric: ``fn`` is called at collection
        time only.  Re-binding the same ``(name, labels)`` replaces the
        callable (instrumentation helpers stay idempotent)."""
        if kind not in ("counter", "gauge"):
            raise ValueError(f"bind() supports counter/gauge, not {kind!r}")
        self._check_kind(name, kind)
        self._instruments[(name, _label_key(labels))] = _Binding(
            name, labels, fn, kind
        )

    def attach(self, instrument: Instrument) -> None:
        """Adopt an externally-created instrument (e.g. a component that
        owns its Histogram) into this registry's collection set."""
        self._check_kind(instrument.name, instrument.kind)
        self._instruments[(instrument.name, _label_key(instrument.labels))] = (
            instrument
        )

    def _check_kind(self, name: str, kind: str) -> None:
        existing = self._kinds.get(name)
        if existing is None:
            self._kinds[name] = kind
        elif existing != kind:
            raise ValueError(
                f"metric {name!r} already registered as {existing}, not {kind}"
            )

    # -- collection ------------------------------------------------------------

    def kinds(self) -> dict[str, str]:
        """Metric name -> instrument kind (for # TYPE export lines)."""
        return dict(self._kinds)

    def collect(self) -> Iterator[Sample]:
        """Flat samples for every instrument, histograms expanded into
        ``_bucket``/``_sum``/``_count`` series (Prometheus convention)."""
        for (name, _), instrument in sorted(
            self._instruments.items(), key=lambda item: item[0]
        ):
            if isinstance(instrument, Histogram):
                bounds = instrument.bucket_bounds()
                for bound, cumulative in zip(
                    bounds, instrument.cumulative_counts()
                ):
                    label_text = "+Inf" if bound == float("inf") else _format_le(bound)
                    yield Sample(
                        f"{name}_bucket",
                        {**instrument.labels, "le": label_text},
                        cumulative,
                        "histogram",
                    )
                yield Sample(f"{name}_sum", instrument.labels, instrument.sum, "histogram")
                yield Sample(f"{name}_count", instrument.labels, instrument.count, "histogram")
            elif isinstance(instrument, _Binding):
                yield Sample(name, instrument.labels, instrument.fn(), instrument.kind)
            else:
                yield Sample(name, instrument.labels, instrument.value, instrument.kind)

    def snapshot(self) -> dict[str, Number]:
        """A flat ``{series: value}`` dict (labels folded into the key),
        suitable for JSON heartbeats and manifests."""
        out: dict[str, Number] = {}
        for sample in self.collect():
            if sample.labels:
                labels = ",".join(f"{k}={v}" for k, v in sorted(sample.labels.items()))
                out[f"{sample.name}{{{labels}}}"] = sample.value
            else:
                out[sample.name] = sample.value
        return out

    def find(self, name: str, **labels: str) -> Optional[Number]:
        """The current value of one series, or None if absent."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None:
            return None
        if isinstance(instrument, _Binding):
            return instrument.fn()
        if isinstance(instrument, Histogram):
            return instrument.count
        return instrument.value

    def __len__(self) -> int:
        return len(self._instruments)


def _format_le(bound: float) -> str:
    """Bucket bounds are exact powers of two: print them as integers."""
    return str(int(bound))
