"""Run manifests: who/what/where for every campaign and bench artifact.

A manifest makes two runs comparable: it stamps the exact configuration
(hashed canonically), the code version (git SHA), and the execution
environment (python version, platform, CPU count).  ``repro sweep``
writes one per campaign; the perf suite embeds the same environment
block in every BENCH_*.json so rate trajectories can be attributed to
the right machine.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Optional, Union


def config_hash(config: dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON form of ``config`` (sorted keys, no
    whitespace), so semantically equal configs hash equal."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def git_sha(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current HEAD commit, or None outside a repo / without git."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else None


def environment() -> dict[str, Any]:
    """The execution-environment block shared by manifests and bench
    reports (satellite: BENCH_*.json comparability across machines)."""
    return {
        "git_sha": git_sha(),
        "python_version": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def build_manifest(
    config: dict[str, Any],
    *,
    seed: Optional[int] = None,
    metrics: Optional[dict[str, Any]] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble a per-run manifest.

    ``config`` is the run's full parameterization (hashed into
    ``config_hash``); ``metrics`` is the final metric snapshot;
    ``extra`` merges arbitrary run outputs (campaign stats, artifact
    paths).
    """
    manifest: dict[str, Any] = {
        "schema": 1,
        "created_unix": time.time(),
        "config": config,
        "config_hash": config_hash(config),
        "seed": seed,
        "environment": environment(),
    }
    if metrics is not None:
        manifest["metrics"] = metrics
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(manifest: dict[str, Any], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=1, sort_keys=True, default=str) + "\n")
    return path
