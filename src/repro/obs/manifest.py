"""Run manifests: who/what/where for every campaign and bench artifact.

A manifest makes two runs comparable: it stamps the exact configuration
(hashed canonically), the code version (git SHA), and the execution
environment (python version, platform, CPU count).  ``repro sweep``
writes one per campaign; the perf suite embeds the same environment
block in every BENCH_*.json so rate trajectories can be attributed to
the right machine.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Optional, Union

from repro.errors import ConfigError

#: Digest version stamped into manifests and used by the ``repro serve``
#: result cache.  Version 2 is the strict type-tagged canonicalizer;
#: version 1 is the legacy ``json.dumps(..., default=str)`` digest kept
#: for verifying pre-existing manifests and BENCH provenance.
CONFIG_HASH_VERSION = 2

#: Domain-separation prefix for the v2 digest, so a v2 hash can never
#: collide with a v1 hash of some crafted string.
_V2_PREFIX = b"repro-config-v2\x00"


def _canonical_into(obj: Any, out: list[bytes], path: str) -> None:
    """Append the type-tagged canonical encoding of ``obj`` to ``out``.

    Every scalar carries a type tag (``i``/``f``/``s``/``b``/``n``) and
    containers tag list vs tuple vs dict, so values that merely *print*
    the same (``(1, 2)`` vs ``[1, 2]``, ``1`` vs ``True`` vs ``"1"``)
    hash differently.  Anything outside the JSON-safe vocabulary —
    non-finite floats, non-string dict keys, arbitrary objects — raises
    :class:`ConfigError` naming the offending path instead of silently
    hashing a ``repr`` (which embeds memory addresses and would make the
    digest non-deterministic).
    """
    # bool is an int subclass: test it first so True/False get their own tag.
    if obj is None:
        out.append(b"n;")
    elif isinstance(obj, bool):
        out.append(b"b1;" if obj else b"b0;")
    elif isinstance(obj, int):
        out.append(b"i%d;" % obj)
    elif isinstance(obj, float):
        if not math.isfinite(obj):
            raise ConfigError(
                f"config value at {path} is non-finite ({obj!r}); "
                "NaN/Inf cannot be hashed canonically"
            )
        out.append(b"f%s;" % repr(obj).encode("ascii"))
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out.append(b"s%d:" % len(data))
        out.append(data)
        out.append(b";")
    elif isinstance(obj, (list, tuple)):
        out.append((b"l" if isinstance(obj, list) else b"t") + b"%d[" % len(obj))
        for index, item in enumerate(obj):
            _canonical_into(item, out, f"{path}[{index}]")
        out.append(b"]")
    elif isinstance(obj, dict):
        for key in obj:
            if not isinstance(key, str):
                raise ConfigError(
                    f"config key {key!r} at {path} is {type(key).__name__}; "
                    "canonical configs require string keys"
                )
        out.append(b"d%d{" % len(obj))
        for key in sorted(obj):
            _canonical_into(key, out, path)
            _canonical_into(obj[key], out, f"{path}.{key}")
        out.append(b"}")
    else:
        raise ConfigError(
            f"config value at {path} has type {type(obj).__name__}, which "
            "has no canonical form; convert it to JSON-safe scalars/"
            "lists/dicts before hashing"
        )


def canonical_config_bytes(config: dict[str, Any]) -> bytes:
    """The version-2 canonical byte encoding of ``config`` (the exact
    bytes the digest covers) — exposed for debugging cache misses."""
    out: list[bytes] = [_V2_PREFIX]
    _canonical_into(config, out, "$")
    return b"".join(out)


def config_hash(config: dict[str, Any], *, version: int = CONFIG_HASH_VERSION) -> str:
    """SHA-256 of the canonical form of ``config``.

    ``version=2`` (the default) uses a strict type-tagged canonicalizer:
    key order never matters, tuples and lists hash differently, and
    non-finite floats / non-string keys / arbitrary objects raise
    :class:`ConfigError` rather than producing an unstable digest.
    ``version=1`` reproduces the legacy ``json.dumps(..., default=str)``
    digest so manifests and BENCH provenance written before the change
    still verify.
    """
    if version == 1:
        canonical = json.dumps(
            config, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode()).hexdigest()
    if version == 2:
        return hashlib.sha256(canonical_config_bytes(config)).hexdigest()
    raise ConfigError(f"unknown config_hash version {version!r} (know 1 and 2)")


def git_sha(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current HEAD commit, or None outside a repo / without git."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else None


def environment() -> dict[str, Any]:
    """The execution-environment block shared by manifests and bench
    reports (satellite: BENCH_*.json comparability across machines)."""
    # Imported lazily: manifests are built from contexts (serve workers,
    # bench harnesses) that must not pay the sim import unless asked.
    from repro.sim import backend as _sim_backend

    return {
        "git_sha": git_sha(),
        "python_version": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        #: What a Simulator constructed in this process would run on:
        #: requested/effective backend plus any fallback reason.
        "sim_backend": _sim_backend.stamp(),
    }


def build_manifest(
    config: dict[str, Any],
    *,
    seed: Optional[int] = None,
    metrics: Optional[dict[str, Any]] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble a per-run manifest.

    ``config`` is the run's full parameterization (hashed into
    ``config_hash``); ``metrics`` is the final metric snapshot;
    ``extra`` merges arbitrary run outputs (campaign stats, artifact
    paths).
    """
    manifest: dict[str, Any] = {
        "schema": 1,
        "created_unix": time.time(),
        "config": config,
        "config_hash": config_hash(config),
        "config_hash_version": CONFIG_HASH_VERSION,
        "seed": seed,
        "environment": environment(),
    }
    if metrics is not None:
        manifest["metrics"] = metrics
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(manifest: dict[str, Any], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=1, sort_keys=True, default=str) + "\n")
    return path
