"""A ConnectX-style host DCQCN stack (the Figure 9 baseline).

The fidelity test compares Marlin's DCQCN against Mellanox ConnectX-5
NICs in an n-cast-1 dumbbell: each host runs five queue pairs (QPs)
sending RDMA-Write flows drawn from the WebSearch model, closed-loop.

This module implements the NIC-resident stack on simulated hosts:

* per-QP go-back-N transport with rate pacing and per-packet ACKs;
* the notification point: CNP on CE-marked arrivals, one per flow per
  ``cnp_interval``;
* an independently coded DCQCN reaction point using fixed-point alpha
  arithmetic (10 fractional bits), the style NIC firmware uses — close
  to, but deliberately not bit-identical with, the HLS module in
  :mod:`repro.cc.dcqcn` ("due to the proprietary nature of the DCQCN
  implementation in commercial NICs, it was not possible to achieve
  complete equivalence").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.measure.fct import FctCollector
from repro.net.host import Host
from repro.net.packet import ECT, Packet
from repro.sim.engine import Simulator
from repro.sim.timers import Timeout
from repro.units import (
    GBPS,
    MBPS,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    wire_bits,
)
from repro.workload.distributions import SizeDistribution

#: Fixed-point scale for alpha (10 fractional bits, firmware style).
ALPHA_SCALE = 1 << 10


@dataclass
class DcqcnRpParams:
    """Reaction-point parameters (NVIDIA-doc style knobs)."""

    g_shift: int = 8  # g = 1/256
    alpha_timer_ps: int = 55 * MICROSECOND
    rate_timer_ps: int = 55 * MICROSECOND
    byte_counter: int = 10 * 1024 * 1024
    fast_recovery_threshold: int = 5
    rate_ai_bps: float = 1 * GBPS
    rate_hai_bps: float = 5 * GBPS
    min_rate_bps: float = 100 * MBPS


class _QueuePair:
    """One sender QP: go-back-N + rate pacing + DCQCN RP."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        qp_id: int,
        dst_addr: int,
        params: DcqcnRpParams,
        line_rate_bps: float,
        frame_bytes: int,
        on_complete: Callable[["_QueuePair"], None],
        *,
        rto_ps: int = 1 * MILLISECOND,
    ) -> None:
        self.sim = sim
        self.host = host
        self.qp_id = qp_id
        self.dst_addr = dst_addr
        self.params = params
        self.line_rate_bps = line_rate_bps
        self.frame_bytes = frame_bytes
        self.on_complete = on_complete
        # Transport.
        self.size_packets = 0
        self.una = 0
        self.nxt = 0
        #: Incremented per flow so stale ACKs of the previous flow (which
        #: restart PSNs at 0) cannot acknowledge the new one.
        self.epoch = 0
        self.active = False
        self.start_ps = -1
        self._send_pending = False
        self._next_send_ps = 0
        self.rto = Timeout(sim, rto_ps, self._on_rto)
        # DCQCN RP state (fixed point alpha).
        self.rate_bps = line_rate_bps
        self.target_bps = line_rate_bps
        self.alpha_q = ALPHA_SCALE  # alpha = 1.0
        self.bc_count = 0
        self.t_count = 0
        self.bytes_since_bc = 0
        self.cut_seen = False
        self.alpha_timer = Timeout(sim, params.alpha_timer_ps, self._on_alpha_timer)
        self.rate_timer = Timeout(sim, params.rate_timer_ps, self._on_rate_timer)

    # -- flow lifecycle ---------------------------------------------------------

    def start_flow(self, size_packets: int) -> None:
        if self.active:
            raise RuntimeError(f"QP {self.qp_id} already has an active flow")
        self.size_packets = size_packets
        self.una = 0
        self.nxt = 0
        self.epoch += 1
        self.active = True
        self.start_ps = self.sim.now
        self.rto.restart()
        self._pump()

    # -- send side -----------------------------------------------------------------

    def _pump(self) -> None:
        if self._send_pending or not self.active or self.nxt >= self.size_packets:
            return
        self._send_pending = True
        self.sim.at(max(self.sim.now, self._next_send_ps), self._send)

    def _send(self) -> None:
        self._send_pending = False
        if not self.active or self.nxt >= self.size_packets:
            return
        psn = self.nxt
        self.nxt += 1
        pacing_ps = int(wire_bits(self.frame_bytes) * SECOND / self.rate_bps)
        self._next_send_ps = max(self._next_send_ps, self.sim.now) + pacing_ps
        packet = Packet(
            "DATA",
            self.host.address,
            self.dst_addr,
            self.frame_bytes,
            flow_id=self._flow_key(),
            psn=psn,
            ecn=ECT,
            created_ps=self.sim.now,
        )
        self.host.send(packet)
        self.bytes_since_bc += self.frame_bytes
        if self.cut_seen and self.bytes_since_bc >= self.params.byte_counter:
            self.bytes_since_bc = 0
            self.bc_count += 1
            self._rate_increase()
        self._pump()

    def _flow_key(self) -> int:
        # Encodes (host, qp, flow epoch) so receiver state is per-flow and
        # stale feedback from a previous flow on this QP is ignored.
        return (self.host.address * 1000 + self.qp_id) * 100_000 + self.epoch

    # -- feedback -----------------------------------------------------------------

    def on_ack(self, psn: int, nack: bool, cnp: bool) -> None:
        if cnp:
            self._on_cnp()
            return
        if not self.active:
            return
        if nack:
            self.nxt = psn  # go-back-N rewind
            self._pump()
            return
        if psn > self.una:
            self.una = psn
            self.rto.restart()
            if self.una >= self.size_packets:
                self._complete()
                return
        self._pump()

    def _complete(self) -> None:
        self.active = False
        self.rto.cancel()
        self.on_complete(self)

    def _on_rto(self) -> None:
        if not self.active:
            return
        self.nxt = self.una
        self.rto.restart()
        self._pump()

    # -- DCQCN reaction point (fixed point) ---------------------------------------

    def _on_cnp(self) -> None:
        self.target_bps = self.rate_bps
        cut = self.rate_bps * self.alpha_q / (2 * ALPHA_SCALE)
        self.rate_bps = max(self.rate_bps - cut, self.params.min_rate_bps)
        g_q = ALPHA_SCALE >> self.params.g_shift
        self.alpha_q = self.alpha_q - (self.alpha_q >> self.params.g_shift) + g_q
        self.bc_count = 0
        self.t_count = 0
        self.cut_seen = True
        self.alpha_timer.restart()
        self.rate_timer.restart()

    def _on_alpha_timer(self) -> None:
        self.alpha_q -= self.alpha_q >> self.params.g_shift
        if self.alpha_q > 1:
            self.alpha_timer.restart()

    def _on_rate_timer(self) -> None:
        self.t_count += 1
        self._rate_increase()
        self.rate_timer.restart()

    def _rate_increase(self) -> None:
        if not self.cut_seen:
            return
        f = self.params.fast_recovery_threshold
        if self.bc_count >= f and self.t_count >= f:
            self.target_bps += self.params.rate_hai_bps
        elif self.bc_count >= f or self.t_count >= f:
            self.target_bps += self.params.rate_ai_bps
        self.target_bps = min(self.target_bps, self.line_rate_bps)
        self.rate_bps = min(
            (self.target_bps + self.rate_bps) / 2.0, self.line_rate_bps
        )


class ConnectXAgent:
    """Host agent: n sender QPs plus the receiver/notification point."""

    def __init__(
        self,
        host: Host,
        *,
        params: Optional[DcqcnRpParams] = None,
        frame_bytes: int = 1024,
        cnp_interval_ps: int = 50 * MICROSECOND,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.params = params if params is not None else DcqcnRpParams()
        self.frame_bytes = frame_bytes
        self.cnp_interval_ps = cnp_interval_ps
        self.qps: list[_QueuePair] = []
        self._qp_by_key: dict[int, _QueuePair] = {}
        # Receiver (notification point) state, keyed by sender flow key.
        self._expected: dict[int, int] = {}
        self._last_cnp_ps: dict[int, int] = {}
        self._nacked_at: dict[int, int] = {}
        self.completions: list[tuple[int, int, int]] = []  # (key, size, fct_ps)
        self.on_qp_complete: Optional[Callable[[_QueuePair], None]] = None
        host.attach(self)

    # -- QP management -----------------------------------------------------------

    def create_qp(self, dst_addr: int) -> _QueuePair:
        qp = _QueuePair(
            self.sim,
            self.host,
            len(self.qps),
            dst_addr,
            self.params,
            float(self.host.port.rate_bps),
            self.frame_bytes,
            self._qp_completed,
        )
        self.qps.append(qp)
        self._qp_by_key[self.host.address * 1000 + qp.qp_id] = qp
        return qp

    def _qp_completed(self, qp: _QueuePair) -> None:
        self.completions.append(
            (qp._flow_key(), qp.size_packets, self.sim.now - qp.start_ps)
        )
        if self.on_qp_complete is not None:
            self.on_qp_complete(qp)

    # -- packet reception ------------------------------------------------------------

    def on_receive(self, packet: Packet) -> None:
        if packet.ptype == "DATA":
            self._receive_data(packet)
        elif packet.ptype == "ACK":
            qp = self._qp_by_key.get(packet.flow_id // 100_000)
            if qp is not None and qp._flow_key() == packet.flow_id:
                qp.on_ack(
                    packet.psn,
                    bool(packet.meta.get("nack", False)),
                    bool(packet.meta.get("cnp", False)),
                )

    def _receive_data(self, data: Packet) -> None:
        key = data.flow_id
        expected = self._expected.get(key, 0)
        if data.ce_marked:
            last = self._last_cnp_ps.get(key, -(1 << 62))
            if self.sim.now - last >= self.cnp_interval_ps:
                self._last_cnp_ps[key] = self.sim.now
                self._reply(data, -1, cnp=True)
        if data.psn == expected:
            expected += 1
            self._expected[key] = expected
            self._nacked_at.pop(key, None)
            self._reply(data, expected)
        elif data.psn > expected:
            if self._nacked_at.get(key) != expected:
                self._nacked_at[key] = expected
                self._reply(data, expected, nack=True)
        else:
            self._reply(data, expected)

    def reset_flow(self, key: int) -> None:
        """Clear receiver state when the sender starts a fresh flow."""
        self._expected.pop(key, None)
        self._nacked_at.pop(key, None)

    def _reply(
        self, data: Packet, psn: int, *, nack: bool = False, cnp: bool = False
    ) -> None:
        ack = Packet(
            "ACK",
            self.host.address,
            data.src,
            64,
            flow_id=data.flow_id,
            psn=psn,
            ecn_echo=data.ce_marked,
            created_ps=self.sim.now,
            meta={"nack": nack, "cnp": cnp},
        )
        self.host.send(ack)


class ConnectXFctHarness:
    """Closed-loop WebSearch FCT tool over host QPs (the verbs-API tool).

    Each sender host gets ``qps_per_host`` QPs toward the receiver; after
    a QP's flow completes, the next one starts immediately.  Receiver-side
    state is reset between flows via a paired receiver agent.
    """

    def __init__(
        self,
        senders: list[ConnectXAgent],
        receiver: ConnectXAgent,
        distribution: SizeDistribution,
        *,
        qps_per_host: int = 5,
        rng: Optional[np.random.Generator] = None,
        stop_after_flows: Optional[int] = None,
    ) -> None:
        self.senders = senders
        self.receiver = receiver
        self.distribution = distribution
        self.qps_per_host = qps_per_host
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stop_after_flows = stop_after_flows
        self.fct = FctCollector()
        self.flows_started = 0
        for agent in senders:
            for _ in range(qps_per_host):
                agent.create_qp(receiver.host.address)
            agent.on_qp_complete = self._on_complete

    def start(self) -> None:
        for agent in self.senders:
            for qp in agent.qps:
                self._launch(qp)

    def _launch(self, qp: _QueuePair) -> None:
        size = self.distribution.sample_packets(self.rng, qp.frame_bytes)
        self.receiver.reset_flow(qp._flow_key())
        qp.start_flow(size)
        self.flows_started += 1

    def _on_complete(self, qp: _QueuePair) -> None:
        self.fct.add(
            qp._flow_key() * 100_000 + self.flows_started,
            qp.size_packets,
            qp.size_packets * qp.frame_bytes,
            qp.start_ps,
            qp.sim.now,
        )
        if (
            self.stop_after_flows is None
            or self.flows_started < self.stop_after_flows
        ):
            self._launch(qp)
