"""Independent reference implementations used as experiment oracles.

* :mod:`repro.reference.ns3_dctcp` — a self-contained single-flow
  Reno/DCTCP simulator playing the role ns-3 plays in the paper's
  Figure 5 correctness test;
* :mod:`repro.reference.connectx` — a host-resident DCQCN stack standing
  in for the Mellanox ConnectX-5 NICs of the Figure 9 fidelity test.

Both are written independently of the Marlin CC modules (different state
layout, different arithmetic style) so that agreement between them and
the tester is evidence of correctness rather than shared code.
"""

from repro.reference.ns3_dctcp import ReferenceDctcpRun, run_reference_dctcp
from repro.reference.connectx import ConnectXAgent, ConnectXFctHarness

__all__ = [
    "ReferenceDctcpRun",
    "run_reference_dctcp",
    "ConnectXAgent",
    "ConnectXFctHarness",
]
