"""An independent single-flow DCTCP simulator (the Figure 5 oracle).

The paper validates Marlin's CC module by generating one DCTCP flow with
deliberately injected packet losses and ECN marks and comparing the cwnd
and alpha trajectories against an ns-3 simulation of the same scenario.
This module is our stand-in for ns-3: a compact, self-contained TCP
sender/receiver pair over a fixed-RTT pipe, with a deterministic
drop/mark schedule keyed by PSN.

The implementation deliberately shares no code with
:mod:`repro.cc.dctcp`: it is a fresh state machine with its own recovery
bookkeeping, so matching trajectories genuinely cross-check the Marlin
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.engine import Simulator
from repro.units import MICROSECOND, RATE_100G, SECOND, serialization_time_ps


@dataclass
class ReferenceDctcpRun:
    """Recorded trajectories of one reference run."""

    cwnd_times_ps: list[int] = field(default_factory=list)
    cwnd_values: list[float] = field(default_factory=list)
    alpha_times_ps: list[int] = field(default_factory=list)
    alpha_values: list[float] = field(default_factory=list)
    packets_delivered: int = 0
    retransmissions: int = 0
    completed: bool = False
    finish_ps: int = -1


class _RefSender:
    """NewReno+DCTCP sender, independently coded."""

    def __init__(
        self,
        sim: Simulator,
        run: ReferenceDctcpRun,
        *,
        total_packets: int,
        mss_bytes: int,
        rate_bps: int,
        init_cwnd: float,
        init_ssthresh: float,
        g: float,
        init_alpha: float,
    ) -> None:
        self.sim = sim
        self.run = run
        self.total = total_packets
        self.mss = mss_bytes
        self.rate_bps = rate_bps
        self.tx_interval_ps = serialization_time_ps(mss_bytes, rate_bps)
        # Transport state.
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = init_cwnd
        self.ssthresh = init_ssthresh
        self.dupacks = 0
        self.recovering = False
        self.recover_point = 0
        # DCTCP estimator.
        self.g = g
        self.alpha = init_alpha
        self.win_acked = 0
        self.win_marked = 0
        self.win_end = 0
        self.ce_reacted_until = -1
        # Plumbing.
        self.pipe_tx = None  # set by the run harness
        self._next_tx_ps = 0
        self._tx_pending = False
        self._record()

    # -- recording ------------------------------------------------------------

    def _record(self) -> None:
        self.run.cwnd_times_ps.append(self.sim.now)
        self.run.cwnd_values.append(self.cwnd)

    def _record_alpha(self) -> None:
        self.run.alpha_times_ps.append(self.sim.now)
        self.run.alpha_values.append(self.alpha)

    # -- transmit side -----------------------------------------------------------

    def pump(self) -> None:
        """Transmit while the window allows, paced at the line rate."""
        if self._tx_pending:
            return
        if self.snd_nxt < self.total and self.snd_nxt < self.snd_una + int(self.cwnd):
            self._tx_pending = True
            self.sim.at(max(self.sim.now, self._next_tx_ps), self._transmit)

    def _transmit(self) -> None:
        self._tx_pending = False
        if self.snd_nxt >= self.total or self.snd_nxt >= self.snd_una + int(self.cwnd):
            return
        psn = self.snd_nxt
        self.snd_nxt += 1
        self._next_tx_ps = self.sim.now + self.tx_interval_ps
        assert self.pipe_tx is not None
        self.pipe_tx(psn, False)
        self.pump()

    def _retransmit(self, psn: int) -> None:
        self.run.retransmissions += 1
        assert self.pipe_tx is not None
        self.pipe_tx(psn, True)

    # -- ACK processing -------------------------------------------------------------

    def on_ack(self, ack_psn: int, ce_echo: bool) -> None:
        if ack_psn > self.snd_una:
            newly = ack_psn - self.snd_una
            self.snd_una = ack_psn
            self.dupacks = 0
            self.win_acked += newly
            if ce_echo:
                self.win_marked += newly
            if self.recovering:
                if ack_psn >= self.recover_point:
                    self.recovering = False
                    self.cwnd = self.ssthresh
                else:
                    self._retransmit(ack_psn)  # NewReno partial ACK
            else:
                if self.cwnd < self.ssthresh:
                    self.cwnd += newly
                else:
                    self.cwnd += newly / self.cwnd
            if ce_echo and ack_psn > self.ce_reacted_until:
                self.cwnd = max(self.cwnd * (1.0 - self.alpha / 2.0), 1.0)
                self.ssthresh = self.cwnd
                self.ce_reacted_until = self.snd_nxt
            if ack_psn >= self.win_end:
                if self.win_acked > 0:
                    fraction = self.win_marked / self.win_acked
                    self.alpha = (1.0 - self.g) * self.alpha + self.g * fraction
                    self._record_alpha()
                self.win_acked = 0
                self.win_marked = 0
                self.win_end = self.snd_nxt
        else:
            self.dupacks += 1
            if self.dupacks == 3 and not self.recovering:
                self.ssthresh = max(self.cwnd / 2.0, 2.0)
                self.cwnd = self.ssthresh + 3
                self.recovering = True
                self.recover_point = self.snd_nxt
                self._retransmit(self.snd_una)
            elif self.recovering:
                self.cwnd += 1
        self._record()
        if self.snd_una >= self.total:
            self.run.completed = True
            self.run.finish_ps = self.sim.now
            return
        self.pump()


class _RefReceiver:
    """Cumulative-ACK receiver with a reorder buffer."""

    def __init__(self) -> None:
        self.expected = 0
        self.buffered: set[int] = set()

    def on_data(self, psn: int) -> int:
        if psn == self.expected:
            self.expected += 1
            while self.expected in self.buffered:
                self.buffered.discard(self.expected)
                self.expected += 1
        elif psn > self.expected:
            self.buffered.add(psn)
        return self.expected


def run_reference_dctcp(
    *,
    total_packets: int,
    drop_psns: frozenset[int] | set[int] = frozenset(),
    mark_psns: frozenset[int] | set[int] = frozenset(),
    rtt_ps: int = 6 * MICROSECOND,
    rate_bps: int = RATE_100G,
    mss_bytes: int = 1024,
    init_cwnd: float = 1.0,
    init_ssthresh: float = 64.0,
    g: float = 1.0 / 16.0,
    init_alpha: float = 1.0,
    max_duration_ps: Optional[int] = None,
) -> ReferenceDctcpRun:
    """Run one reference DCTCP flow with a deterministic drop/mark plan.

    ``drop_psns`` are dropped on first transmission only (retransmissions
    get through); ``mark_psns`` arrive CE-marked.  Returns the recorded
    cwnd/alpha trajectories.
    """
    sim = Simulator()
    run = ReferenceDctcpRun()
    sender = _RefSender(
        sim,
        run,
        total_packets=total_packets,
        mss_bytes=mss_bytes,
        rate_bps=rate_bps,
        init_cwnd=init_cwnd,
        init_ssthresh=init_ssthresh,
        g=g,
        init_alpha=init_alpha,
    )
    receiver = _RefReceiver()
    one_way_ps = rtt_ps // 2
    dropped_once: set[int] = set()

    def deliver_data(psn: int, is_rtx: bool) -> None:
        if psn in drop_psns and psn not in dropped_once and not is_rtx:
            dropped_once.add(psn)
            return
        run.packets_delivered += 1
        ack_psn = receiver.on_data(psn)
        ce = psn in mark_psns
        sim.after(one_way_ps, sender.on_ack, ack_psn, ce)

    def pipe_tx(psn: int, is_rtx: bool) -> None:
        sim.after(one_way_ps, deliver_data, psn, is_rtx)

    sender.pipe_tx = pipe_tx
    sender.pump()
    deadline = max_duration_ps if max_duration_ps is not None else 1 * SECOND
    sim.run(until_ps=deadline)
    return run
