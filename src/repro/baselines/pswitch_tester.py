"""A programmable-switch-only tester (Norma/HyperTester/IMap class).

These testers (paper Section 2.2) achieve Tbps-scale configurable
traffic generation but "do not simulate CC algorithms or generate
traffic with CC behaviors" — they blast at a configured rate regardless
of congestion feedback.  This model makes the consequence measurable:
run a fixed-rate tester and a Marlin CC tester into the same bottleneck
and compare loss and delivered goodput (the motivation bench).

Implementation: a Device that emits fixed-size DATA packets at a
configured rate per port, counts returned ACKs, and ignores ECN — the
data-plane capabilities a P4-only tester actually has.
"""

from __future__ import annotations

from repro.net.device import Device, Port
from repro.net.packet import ECT, Packet
from repro.pswitch.packets import PTYPE_ACK, PTYPE_DATA
from repro.sim.engine import Simulator
from repro.units import RATE_100G, SECOND, wire_bits


class FixedRateStream:
    """One port's open-loop packet stream."""

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        *,
        stream_id: int,
        src_addr: int,
        dst_addr: int,
        rate_bps: float,
        frame_bytes: int,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"stream rate must be positive, got {rate_bps}")
        self.sim = sim
        self.port = port
        self.stream_id = stream_id
        self.src_addr = src_addr
        self.dst_addr = dst_addr
        self.frame_bytes = frame_bytes
        self.interval_ps = int(wire_bits(frame_bytes) * SECOND / rate_bps)
        self.psn = 0
        self.running = False
        self.sent_packets = 0

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.sim.call_now(self._emit)

    def stop(self) -> None:
        self.running = False

    def _emit(self) -> None:
        if not self.running:
            return
        packet = Packet(
            PTYPE_DATA,
            self.src_addr,
            self.dst_addr,
            self.frame_bytes,
            flow_id=self.stream_id,
            psn=self.psn,
            ecn=ECT,
            created_ps=self.sim.now,
            meta={"tx_tstamp_ps": self.sim.now},
        )
        self.psn += 1
        self.sent_packets += 1
        self.port.send(packet)
        self.sim.after(self.interval_ps, self._emit)


class PswitchTester(Device):
    """Open-loop, CC-less tester: fixed-rate streams + ACK counting.

    Received DATA is acknowledged (so a CC tester on the other side of a
    comparison still works), but returning ACKs and their ECN echoes are
    only *counted* — the streams never slow down.  That is exactly the
    R1 failure Table 1 assigns this tester class.
    """

    def __init__(
        self,
        sim: Simulator,
        n_ports: int,
        *,
        port_rate_bps: int = RATE_100G,
        name: str = "pswitch-tester",
    ):
        super().__init__(sim, name)
        for _ in range(n_ports):
            self.add_port(rate_bps=port_rate_bps)
        self.streams: list[FixedRateStream] = []
        self.acks_received = 0
        self.ecn_echoes_ignored = 0
        self.data_received = 0
        self._expected: dict[int, int] = {}

    def add_stream(
        self,
        port_index: int,
        *,
        src_addr: int,
        dst_addr: int,
        rate_bps: float,
        frame_bytes: int = 1024,
    ) -> FixedRateStream:
        stream = FixedRateStream(
            self.sim,
            self.ports[port_index],
            stream_id=len(self.streams) + 1,
            src_addr=src_addr,
            dst_addr=dst_addr,
            rate_bps=rate_bps,
            frame_bytes=frame_bytes,
        )
        self.streams.append(stream)
        return stream

    def start_all(self) -> None:
        for stream in self.streams:
            stream.start()

    def receive(self, packet: Packet, port: Port) -> None:
        if packet.ptype == PTYPE_DATA:
            # Minimal receiver: cumulative ACK, no OOO handling.
            self.data_received += 1
            expected = self._expected.get(packet.flow_id, 0)
            if packet.psn == expected:
                self._expected[packet.flow_id] = expected + 1
            ack = Packet(
                PTYPE_ACK,
                packet.dst,
                packet.src,
                64,
                flow_id=packet.flow_id,
                psn=self._expected.get(packet.flow_id, 0),
                ecn_echo=packet.ce_marked,
                created_ps=self.sim.now,
            )
            port.send(ack)
        elif packet.ptype == PTYPE_ACK:
            # The defining limitation: feedback is measured, never obeyed.
            self.acks_received += 1
            if packet.ecn_echo:
                self.ecn_echoes_ignored += 1

    @property
    def total_sent(self) -> int:
        return sum(stream.sent_packets for stream in self.streams)
