"""Alternative tester architectures (paper Table 1).

Quantitative models of the tester classes Marlin is compared against:
software/DPDK testers (CPU-bound), FPGA-only testers (interface-bound),
and commercial black-box testers (no custom CC).  The Table 1/Table 2
benches evaluate these models against the paper's requirements.
"""

from repro.baselines.software_tester import SoftwareTesterModel
from repro.baselines.fpga_tester import FpgaTesterModel
from repro.baselines.commercial_tester import CommercialTesterModel
from repro.baselines.pswitch_tester import FixedRateStream, PswitchTester

__all__ = [
    "SoftwareTesterModel",
    "FpgaTesterModel",
    "CommercialTesterModel",
    "FixedRateStream",
    "PswitchTester",
]
