"""A commercial black-box tester model (paper Section 2.2).

Spirent/Keysight-class devices cover L2-L7 but are closed: no custom CC,
and L4+ test modules do not reach Tbps in a single device.  The paper
also cites the economics: a dual-port 100 Gbps traffic-generation module
costs over $100,000.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import RATE_100G, TBPS


@dataclass(frozen=True)
class CommercialTesterModel:
    """A closed L4-7 tester chassis."""

    #: Per-module throughput for stateful L4+ testing.
    l4_module_rate_bps: int = 2 * RATE_100G
    modules_per_chassis: int = 4
    supports_custom_cc: bool = False
    supports_cc_traffic: bool = True
    module_cost_usd: int = 100_000

    @property
    def max_l4_throughput_bps(self) -> int:
        return self.l4_module_rate_bps * self.modules_per_chassis

    def meets_rate(self, rate_bps: float) -> bool:
        return self.max_l4_throughput_bps >= rate_bps

    @property
    def reaches_tbps(self) -> bool:
        return self.max_l4_throughput_bps >= TBPS
