"""An FPGA-only tester model (paper Section 2.1).

FPGA NICs meet the programmability and packet-frequency criteria but are
interface-bound: two 100 Gbps ports per card, four cards per 2-rack-unit
server, for 800 Gbps — short of Tbps (and at $5,341 per card, expensive
to scale by adding chassis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import FPGA_CLOCK_HZ, RATE_100G, line_rate_pps


@dataclass(frozen=True)
class FpgaTesterModel:
    """A server full of FPGA NICs used directly as the traffic source."""

    ports_per_card: int = 2
    cards_per_server: int = 4
    port_rate_bps: int = RATE_100G
    clock_hz: int = FPGA_CLOCK_HZ
    card_cost_usd: int = 5_341

    @property
    def max_throughput_bps(self) -> int:
        return self.ports_per_card * self.cards_per_server * self.port_rate_bps

    @property
    def max_pps_per_port(self) -> float:
        """One packet per clock cycle, pipelined."""
        return float(self.clock_hz)

    def meets_rate(self, rate_bps: float) -> bool:
        return self.max_throughput_bps >= rate_bps

    def frequency_ok(self, frame_bytes: int) -> bool:
        """Clock supports per-port line rate for this frame size."""
        return self.max_pps_per_port >= line_rate_pps(frame_bytes, self.port_rate_bps)

    @property
    def server_cost_usd(self) -> int:
        return self.cards_per_server * self.card_cost_usd
