"""A CPU/DPDK software tester model (paper Section 2.1).

The paper's argument: even bypassing the kernel with DPDK, a 3 GHz core
running "a highly optimized CC algorithm that completes in 50 clock
cycles" cannot reach the ~81 Mpps that 1 Tbps of MTU-1518 traffic
requires.  This model makes that arithmetic executable and extends it to
multi-core scaling (with an efficiency factor for the memory/NIC-queue
contention that keeps real DPDK apps below linear scaling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import RATE_100G, line_rate_pps, wire_bits


@dataclass(frozen=True)
class SoftwareTesterModel:
    """A host-based tester: cores x clock / cycles-per-packet."""

    cpu_hz: float = 3.0e9
    #: Per-packet CC + IO budget (the paper's optimistic 50 cycles).
    cycles_per_packet: int = 50
    cores: int = 1
    #: Multi-core scaling efficiency (1.0 = perfectly linear).
    scaling_efficiency: float = 0.8
    #: NIC ports available to the host.
    nic_ports: int = 2
    nic_port_rate_bps: int = RATE_100G

    @property
    def max_pps(self) -> float:
        """Peak packet rate the CPU side sustains."""
        single = self.cpu_hz / self.cycles_per_packet
        if self.cores == 1:
            return single
        return single * self.cores * self.scaling_efficiency

    def max_throughput_bps(self, frame_bytes: int) -> float:
        """Generated traffic rate: min(CPU limit, NIC interface limit)."""
        cpu_limited = self.max_pps * wire_bits(frame_bytes)
        nic_limited = float(self.nic_ports * self.nic_port_rate_bps)
        return min(cpu_limited, nic_limited)

    def pps_required_for(self, rate_bps: float, frame_bytes: int) -> float:
        """Packet rate needed to generate ``rate_bps`` at a frame size."""
        return rate_bps / wire_bits(frame_bytes)

    def meets_rate(self, rate_bps: float, frame_bytes: int) -> bool:
        return self.max_throughput_bps(frame_bytes) >= rate_bps

    def single_flow_line_rate_ok(self, frame_bytes: int) -> bool:
        """Can one flow be scheduled at one port's line rate?"""
        return self.max_pps >= line_rate_pps(frame_bytes, self.nic_port_rate_bps)
