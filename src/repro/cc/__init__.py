"""Congestion-control algorithm modules (paper Table 3 / Table 4).

Algorithms implement the HLS-style entry-function contract in
:mod:`repro.cc.base`; the built-ins are the three the paper implements
(Reno, DCTCP, DCQCN) plus Cubic and TIMELY from the Discussion section.
"""

from repro.cc.base import (
    CCAlgorithm,
    CCMode,
    CUST_VAR_BYTES,
    EventType,
    Flags,
    IntrinsicInput,
    IntrinsicOutput,
    OpCounts,
    TIMER_ALG_A,
    TIMER_ALG_B,
    TIMER_RTO,
)
from repro.cc.reno import Reno, RenoState
from repro.cc.dctcp import Dctcp, DctcpState, DctcpSlowState, AlphaUpdateEvent
from repro.cc.dcqcn import Dcqcn, DcqcnState
from repro.cc.cubic import Cubic, CubicState, lut_cbrt
from repro.cc.timely import Timely, TimelyState
from repro.cc.hpcc import Hpcc, HpccState
from repro.cc.swift import Swift, SwiftState
from repro.cc.kernels import (
    KERNEL_DCQCN,
    KERNEL_DCTCP,
    KERNEL_IDEAL,
    KERNEL_SLOW_START,
    fluid_kernel,
    kernel_name,
)
from repro.cc.registry import available, create, lookup, register

__all__ = [
    "CCAlgorithm",
    "CCMode",
    "CUST_VAR_BYTES",
    "EventType",
    "Flags",
    "IntrinsicInput",
    "IntrinsicOutput",
    "OpCounts",
    "TIMER_ALG_A",
    "TIMER_ALG_B",
    "TIMER_RTO",
    "Reno",
    "RenoState",
    "Dctcp",
    "DctcpState",
    "DctcpSlowState",
    "AlphaUpdateEvent",
    "Dcqcn",
    "DcqcnState",
    "Cubic",
    "CubicState",
    "lut_cbrt",
    "Timely",
    "TimelyState",
    "Hpcc",
    "HpccState",
    "Swift",
    "SwiftState",
    "available",
    "create",
    "lookup",
    "register",
    "KERNEL_IDEAL",
    "KERNEL_SLOW_START",
    "KERNEL_DCTCP",
    "KERNEL_DCQCN",
    "fluid_kernel",
    "kernel_name",
]
