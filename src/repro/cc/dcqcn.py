"""Rate-based DCQCN (the reaction-point side), as a Marlin CC module.

DCQCN (Zhu et al., SIGCOMM '15) is the RoCEv2 congestion control the paper
tests against ConnectX NICs.  The switch marks ECN; the notification point
(receiver) converts marks into CNPs; the reaction point (sender, this
module) cuts its rate multiplicatively on CNPs and recovers through the
byte-counter / timer state machine:

* on CNP:  ``Rt = Rc``; ``Rc *= (1 - alpha/2)``; ``alpha = (1-g)*alpha + g``;
  both recovery counters reset;
* alpha timer (no CNP for ``alpha_timer_ps``): ``alpha *= (1 - g)``;
* rate timer / byte counter events drive increase stages:
  fast recovery (``Rc = (Rt + Rc)/2``) for the first F events, then
  additive (``Rt += Rai``), then hyper (``Rt += Rhai``) increase.

Parameters default to the values in the DCQCN paper with the
byte-counter/timer settings NVIDIA's parameter guide recommends scaling
for 100 Gbps ports.  Table 4 reports 98 LoC and 6 clock cycles for the
fast path (two 32-bit multiplications plus adds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.cc.base import (
    CCAlgorithm,
    CCMode,
    EventType,
    IntrinsicInput,
    IntrinsicOutput,
    OpCounts,
    TIMER_ALG_A,
    TIMER_ALG_B,
)
from repro.units import GBPS, MBPS, MICROSECOND


@dataclass
class DcqcnState:
    """Customized variable block for DCQCN."""

    #: Target rate Rt (bps).
    target_rate: float = 0.0
    #: Congestion estimate.
    alpha: float = 1.0
    #: Byte-counter expirations since the last CNP.
    bc_count: int = 0
    #: Rate-timer expirations since the last CNP.
    t_count: int = 0
    #: Whether any CNP has been seen (before that, stay at line rate).
    cut_seen: bool = False


class Dcqcn(CCAlgorithm):
    """DCQCN reaction point."""

    name = "dcqcn"
    mode = CCMode.RATE
    # Fast path critical chain: the CNP rate cut — two 32-bit
    # multiplications (rate * (1 - alpha/2) and the alpha EWMA) plus the
    # surrounding adds and compares.
    ops = OpCounts(add_sub=4, compare=4, mul32=2)
    lines_of_code = 98

    def __init__(
        self,
        *,
        g: float = 1.0 / 256.0,
        initial_alpha: float = 1.0,
        alpha_timer_ps: int = 55 * MICROSECOND,
        rate_timer_ps: int = 55 * MICROSECOND,
        byte_counter: int = 10 * 1024 * 1024,
        fast_recovery_threshold: int = 5,
        rate_ai_bps: float = 1 * GBPS,
        rate_hai_bps: float = 5 * GBPS,
        min_rate_floor_bps: float = 100 * MBPS,
    ) -> None:
        if not 0.0 < g <= 1.0:
            raise ValueError(f"DCQCN g must be in (0, 1], got {g}")
        self.g = g
        self.initial_alpha = initial_alpha
        self.alpha_timer_ps = alpha_timer_ps
        self.rate_timer_ps = rate_timer_ps
        self.byte_counter = byte_counter
        self.fast_recovery_threshold = fast_recovery_threshold
        self.rate_ai_bps = rate_ai_bps
        self.rate_hai_bps = rate_hai_bps
        self.min_rate_floor_bps = min_rate_floor_bps
        self._link_rate_bps: float = 100 * GBPS

    # -- state --------------------------------------------------------------

    def initial_cust(self) -> DcqcnState:
        return DcqcnState(alpha=self.initial_alpha)

    def initial_cwnd_or_rate(self, link_rate_bps: int) -> float:
        self._link_rate_bps = float(link_rate_bps)
        return float(link_rate_bps)

    def min_rate_bps(self, link_rate_bps: int) -> float:
        return self.min_rate_floor_bps

    def byte_counter_bytes(self) -> Optional[int]:
        return self.byte_counter

    def on_flow_start(self, cust: DcqcnState, slow: Any, now_ps: int) -> IntrinsicOutput:
        # Rate/alpha timers only start running once congestion is seen.
        return IntrinsicOutput()

    # -- fast path ----------------------------------------------------------

    def on_event(
        self, intr: IntrinsicInput, cust: DcqcnState, slow: Any
    ) -> IntrinsicOutput:
        if intr.evt_type == EventType.RX:
            if intr.flags.cnp:
                return self._on_cnp(intr, cust)
            if intr.flags.nack:
                # RoCE go-back-N: rewind, no rate change (loss is not a
                # DCQCN congestion signal; CNPs are).
                return IntrinsicOutput(rewind_to_una=True)
            return IntrinsicOutput()
        if intr.evt_type == EventType.TIMEOUT:
            if intr.timer_id == TIMER_ALG_A:
                return self._on_alpha_timer(intr, cust)
            if intr.timer_id == TIMER_ALG_B:
                cust.t_count += 1
                out = self._increase(intr, cust)
                out.rst_timers.append((TIMER_ALG_B, self.rate_timer_ps))
                return out
            return IntrinsicOutput()
        if intr.evt_type == EventType.BYTE_COUNTER:
            cust.bc_count += 1
            return self._increase(intr, cust)
        return IntrinsicOutput()

    def _on_cnp(self, intr: IntrinsicInput, cust: DcqcnState) -> IntrinsicOutput:
        rate = intr.cwnd_or_rate
        cust.target_rate = rate
        rate = max(rate * (1.0 - cust.alpha / 2.0), self.min_rate_floor_bps)
        cust.alpha = (1.0 - self.g) * cust.alpha + self.g
        cust.bc_count = 0
        cust.t_count = 0
        cust.cut_seen = True
        return IntrinsicOutput(
            cwnd_or_rate=rate,
            rst_timers=[
                (TIMER_ALG_A, self.alpha_timer_ps),
                (TIMER_ALG_B, self.rate_timer_ps),
            ],
        )

    def _on_alpha_timer(self, intr: IntrinsicInput, cust: DcqcnState) -> IntrinsicOutput:
        cust.alpha = (1.0 - self.g) * cust.alpha
        out = IntrinsicOutput()
        if cust.alpha > 1e-4:
            out.rst_timers.append((TIMER_ALG_A, self.alpha_timer_ps))
        return out

    def _increase(self, intr: IntrinsicInput, cust: DcqcnState) -> IntrinsicOutput:
        if not cust.cut_seen:
            # Still at line rate; nothing to recover.
            return IntrinsicOutput()
        rate = intr.cwnd_or_rate
        f = self.fast_recovery_threshold
        if cust.bc_count >= f and cust.t_count >= f:
            cust.target_rate += self.rate_hai_bps  # hyper increase
        elif cust.bc_count >= f or cust.t_count >= f:
            cust.target_rate += self.rate_ai_bps  # additive increase
        # else: fast recovery — target unchanged, rate converges toward it.
        cust.target_rate = min(cust.target_rate, self._link_rate_bps)
        rate = min((cust.target_rate + rate) / 2.0, self._link_rate_bps)
        return IntrinsicOutput(cwnd_or_rate=rate)
