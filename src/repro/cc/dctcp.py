"""DCTCP as a Marlin CC module, with the Slow-Path alpha update.

DCTCP extends Reno with an ECN-fraction estimator: the receiver echoes CE
marks, the sender counts the fraction ``F`` of marked packets per window,
and maintains ``alpha = (1 - g) * alpha + g * F``.  On the first ECN echo
of a window the sender cuts ``cwnd`` by ``alpha / 2`` (Congestion Window
Reduced state) instead of Reno's half.

The paper uses DCTCP as the showcase for the Slow Path (Section 5.4): the
per-window alpha update needs a division, so the fast path only tallies
``acked`` / ``marked`` counters and emits a slow-path event once per
window, letting the division run with hundreds of cycles of budget and
32-bit precision.  Table 4 reports 175 LoC, 24 cycles (one 16-bit division
plus two 32-bit multiplications on the critical path).

BRAM ownership (Section 5.1): ``alpha`` lives in the slow-path block —
written only by the slow path, read-only to the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.cc.base import (
    CCMode,
    EventType,
    IntrinsicInput,
    IntrinsicOutput,
    OpCounts,
)
from repro.cc.reno import Reno, RenoState


#: Fixed-point scale of the fast-path alpha (16-bit, Section 5.4: without
#: the Slow Path, division and alpha precision are limited to 16 bits).
ALPHA16_SCALE = 1 << 16


@dataclass
class DctcpState(RenoState):
    """Fast-path (customized) state: Reno fields plus window mark tallies."""

    #: Packets cumulatively ACKed / ECN-marked in the current window.
    acked_cnt: int = 0
    marked_cnt: int = 0
    #: PSN at which the current observation window ends.
    window_end: int = 0
    #: PSN until which further ECN echoes are ignored (one cut per window).
    cwr_end: int = -1
    #: 16-bit fixed-point alpha, used only when the Slow Path is disabled
    #: (the fast path then owns alpha at reduced precision).
    alpha_q16: int = ALPHA16_SCALE


@dataclass
class DctcpSlowState:
    """Slow-path state: written only by the slow path."""

    alpha: float = 1.0


@dataclass(frozen=True)
class AlphaUpdateEvent:
    """Slow-path event emitted once per window (Table 3 ``slwpth-evt``)."""

    acked: int
    marked: int


class Dctcp(Reno):
    """DCTCP: Reno loss behaviour + proportional ECN response."""

    name = "dctcp"
    mode = CCMode.WINDOW
    # Critical chain: the alpha-scaled window cut — one 16-bit division
    # (fast-path fallback precision), two 32-bit multiplications, plus the
    # Reno-style compares/adds around it.
    ops = OpCounts(add_sub=4, compare=3, shift=1, mul32=2, div16=1)
    lines_of_code = 175

    def __init__(
        self,
        *,
        g: float = 1.0 / 16.0,
        initial_alpha: float = 1.0,
        use_slow_path: bool = True,
        **reno_kwargs: Any,
    ) -> None:
        super().__init__(**reno_kwargs)
        if not 0.0 < g <= 1.0:
            raise ValueError(f"DCTCP g must be in (0, 1], got {g}")
        self.g = g
        self.initial_alpha = initial_alpha
        self.use_slow_path = use_slow_path

    # -- state --------------------------------------------------------------

    def initial_cust(self) -> DctcpState:
        return DctcpState(
            ssthresh=self.initial_ssthresh,
            alpha_q16=int(self.initial_alpha * ALPHA16_SCALE),
        )

    def initial_slow(self) -> Optional[DctcpSlowState]:
        if not self.use_slow_path:
            return None  # alpha lives on the fast path at 16-bit precision
        return DctcpSlowState(alpha=self.initial_alpha)

    def effective_alpha(self, cust: DctcpState, slow: Optional[DctcpSlowState]) -> float:
        """Alpha as the window cut sees it: 32-bit from the Slow Path, or
        16-bit fixed point when computed inline (Section 5.4)."""
        if self.use_slow_path and slow is not None:
            return slow.alpha
        return cust.alpha_q16 / ALPHA16_SCALE

    # -- fast path ----------------------------------------------------------

    def on_event(
        self, intr: IntrinsicInput, cust: DctcpState, slow: DctcpSlowState
    ) -> IntrinsicOutput:
        if intr.evt_type != EventType.RX:
            return super().on_event(intr, cust, slow)

        advanced = intr.psn > cust.last_ack
        acked_now = intr.psn - cust.last_ack if advanced else 0
        out = super().on_event(intr, cust, slow)
        cwnd = out.cwnd_or_rate if out.cwnd_or_rate is not None else intr.cwnd_or_rate

        if advanced:
            cust.acked_cnt += acked_now
            if intr.flags.ecn:
                cust.marked_cnt += acked_now

        # ECN response: one multiplicative cut per window of data.
        if intr.flags.ecn and advanced and intr.psn > cust.cwr_end:
            cwnd = max(cwnd * (1.0 - self.effective_alpha(cust, slow) / 2.0), 1.0)
            cust.ssthresh = cwnd
            cust.cwr_end = intr.nxt
            out.cwnd_or_rate = cwnd

        # End of observation window: update alpha — via the Slow Path
        # (32-bit precision) or inline with 16-bit arithmetic (§5.4).
        if advanced and intr.psn >= cust.window_end:
            if cust.acked_cnt > 0:
                if self.use_slow_path:
                    out.slow_path_events.append(
                        AlphaUpdateEvent(acked=cust.acked_cnt, marked=cust.marked_cnt)
                    )
                else:
                    self._update_alpha16(cust)
            cust.acked_cnt = 0
            cust.marked_cnt = 0
            cust.window_end = intr.nxt

        out.cwnd_or_rate = cwnd if out.cwnd_or_rate is None else out.cwnd_or_rate
        return out

    def _update_alpha16(self, cust: DctcpState) -> None:
        """Fast-path alpha EWMA in 16-bit fixed point.

        The division is 16-bit (``F`` quantized to 1/65536) and the EWMA
        increment ``g * F`` truncates below one quantum — tiny marking
        fractions are lost, the imprecision the Slow Path removes.
        """
        fraction_q16 = cust.marked_cnt * ALPHA16_SCALE // cust.acked_cnt
        g_q16 = int(self.g * ALPHA16_SCALE)
        decayed = cust.alpha_q16 - (cust.alpha_q16 * g_q16) // ALPHA16_SCALE
        cust.alpha_q16 = decayed + (g_q16 * fraction_q16) // ALPHA16_SCALE

    # -- slow path ----------------------------------------------------------

    def slow_path(
        self, event: Any, cust: DctcpState, slow: DctcpSlowState
    ) -> Optional[float]:
        if isinstance(event, AlphaUpdateEvent) and event.acked > 0:
            fraction = event.marked / event.acked
            slow.alpha = (1.0 - self.g) * slow.alpha + self.g * fraction
        return None
