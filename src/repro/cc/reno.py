"""Window-based TCP Reno (NewReno-style recovery), as a Marlin CC module.

This is the simplest of the three algorithms the paper implements on the
FPGA (Table 4: 156 LoC, 2 clock cycles).  The fast path is pure adds,
compares, and shifts, so it fits the 2-cycle budget; there is no slow path.

State machine (matching the Figure 5 narrative):

* slow start — ``cwnd`` grows by one packet per new ACK until ``ssthresh``;
* congestion avoidance — ``cwnd`` grows by ``1/cwnd`` per new ACK;
* three duplicate ACKs — fast retransmit of ``una`` and fast recovery:
  ``ssthresh = cwnd / 2``, ``cwnd = ssthresh + 3``, window inflation per
  extra dupack, deflation to ``ssthresh`` on the ACK that covers the
  recovery point (NewReno partial-ACK retransmissions in between);
* retransmission timeout — ``ssthresh = cwnd / 2``, ``cwnd = 1``,
  go-back-N from ``una``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cc.base import (
    CCAlgorithm,
    CCMode,
    EventType,
    IntrinsicInput,
    IntrinsicOutput,
    OpCounts,
    TIMER_RTO,
)
from repro.units import MICROSECOND

#: Duplicate-ACK threshold for fast retransmit.
DUP_ACK_THRESHOLD = 3


@dataclass
class RenoState:
    """Customized variable block for Reno (fits the 64 B budget:
    4 x 32-bit + 2 x 8-bit fields)."""

    ssthresh: float
    dup_acks: int = 0
    in_recovery: bool = False
    #: PSN that must be cumulatively ACKed to exit fast recovery.
    recovery_end: int = 0
    #: Highest cumulative ACK seen (detects duplicates).
    last_ack: int = 0
    #: Exponential RTO backoff multiplier.
    rto_backoff: int = 1


class Reno(CCAlgorithm):
    """TCP Reno with NewReno partial-ACK handling."""

    name = "reno"
    mode = CCMode.WINDOW
    # Fast path critical chain: compares to classify the ACK, one add to
    # grow the window, shifts for the halving.
    ops = OpCounts(add_sub=3, compare=4, shift=1)
    lines_of_code = 156

    def __init__(
        self,
        *,
        initial_cwnd: float = 1.0,
        initial_ssthresh: float = 64.0,
        rto_ps: int = 200 * MICROSECOND,
        max_cwnd: float = 1 << 20,
    ) -> None:
        self.initial_cwnd = initial_cwnd
        self.initial_ssthresh = initial_ssthresh
        self.rto_ps = rto_ps
        self.max_cwnd = max_cwnd

    # -- state --------------------------------------------------------------

    def initial_cust(self) -> RenoState:
        return RenoState(ssthresh=self.initial_ssthresh)

    def initial_cwnd_or_rate(self, link_rate_bps: int) -> float:
        return self.initial_cwnd

    def on_flow_start(self, cust: Any, slow: Any, now_ps: int) -> IntrinsicOutput:
        return IntrinsicOutput(rst_timers=[(TIMER_RTO, self.rto_ps)])

    # -- fast path ----------------------------------------------------------

    def on_event(self, intr: IntrinsicInput, cust: RenoState, slow: Any) -> IntrinsicOutput:
        if intr.evt_type == EventType.TIMEOUT and intr.timer_id == TIMER_RTO:
            return self._on_timeout(intr, cust)
        if intr.evt_type == EventType.RX:
            return self._on_ack(intr, cust)
        return IntrinsicOutput()

    def _on_ack(self, intr: IntrinsicInput, cust: RenoState) -> IntrinsicOutput:
        out = IntrinsicOutput()
        cwnd = intr.cwnd_or_rate
        if intr.psn > cust.last_ack:
            # New data acknowledged.
            acked = intr.psn - cust.last_ack
            cust.last_ack = intr.psn
            cust.dup_acks = 0
            cust.rto_backoff = 1
            if cust.in_recovery:
                if intr.psn >= cust.recovery_end:
                    # Full ACK: recovery complete, deflate to ssthresh.
                    cust.in_recovery = False
                    cwnd = cust.ssthresh
                else:
                    # Partial ACK: retransmit the next hole, keep cwnd.
                    out.rtx_psn = intr.psn
            else:
                cwnd = self._grow(cwnd, acked, cust)
            out.rst_timers.append((TIMER_RTO, self.rto_ps))
        elif intr.flags.nack or intr.psn == cust.last_ack:
            # Duplicate ACK.
            cust.dup_acks += 1
            if cust.dup_acks == DUP_ACK_THRESHOLD and not cust.in_recovery:
                cust.ssthresh = max(cwnd / 2.0, 2.0)
                cust.in_recovery = True
                cust.recovery_end = intr.nxt
                cwnd = cust.ssthresh + DUP_ACK_THRESHOLD
                out.rtx_psn = intr.una
            elif cust.in_recovery:
                # Window inflation: one packet left the network.
                cwnd = min(cwnd + 1.0, self.max_cwnd)
        out.cwnd_or_rate = cwnd
        return out

    def _grow(self, cwnd: float, acked: int, cust: RenoState) -> float:
        if cwnd < cust.ssthresh:
            # Slow start: exponential growth, capped at ssthresh boundary.
            cwnd = min(cwnd + acked, self.max_cwnd)
        else:
            # Congestion avoidance: ~1 packet per RTT.
            cwnd = min(cwnd + acked / cwnd, self.max_cwnd)
        return cwnd

    def _on_timeout(self, intr: IntrinsicInput, cust: RenoState) -> IntrinsicOutput:
        cust.ssthresh = max(intr.cwnd_or_rate / 2.0, 2.0)
        cust.dup_acks = 0
        cust.in_recovery = False
        cust.rto_backoff = min(cust.rto_backoff * 2, 64)
        return IntrinsicOutput(
            cwnd_or_rate=1.0,
            rewind_to_una=True,
            rst_timers=[(TIMER_RTO, self.rto_ps * cust.rto_backoff)],
        )
