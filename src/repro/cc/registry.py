"""Name-based CC algorithm registry.

The control plane (Section 3.2) lets operators select an algorithm by
name; custom algorithms register themselves here, which is the software
analogue of flashing new HLS firmware onto the FPGA.
"""

from __future__ import annotations

from typing import Any, Type

from repro.cc.base import CCAlgorithm
from repro.errors import ConfigError

_REGISTRY: dict[str, Type[CCAlgorithm]] = {}


def register(cls: Type[CCAlgorithm]) -> Type[CCAlgorithm]:
    """Register a CC algorithm class under its ``name`` attribute.

    Usable as a decorator for user-defined algorithms::

        @register
        class MyCC(CCAlgorithm):
            name = "mycc"
            ...
    """
    name = cls.name
    if not name or name == "abstract":
        raise ConfigError(f"CC class {cls.__name__} must define a concrete name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ConfigError(f"CC algorithm {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def create(name: str, **params: Any) -> CCAlgorithm:
    """Instantiate a registered algorithm with constructor parameters."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown CC algorithm {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    algorithm = cls(**params)
    algorithm.validate()
    return algorithm


def lookup(name: str) -> Type[CCAlgorithm]:
    """The registered class for ``name`` (no instantiation)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown CC algorithm {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def available() -> list[str]:
    """Names of all registered algorithms."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    from repro.cc.cubic import Cubic
    from repro.cc.dcqcn import Dcqcn
    from repro.cc.dctcp import Dctcp
    from repro.cc.hpcc import Hpcc
    from repro.cc.reno import Reno
    from repro.cc.swift import Swift
    from repro.cc.timely import Timely

    for cls in (Reno, Dctcp, Dcqcn, Cubic, Timely, Hpcc, Swift):
        register(cls)


_register_builtins()
