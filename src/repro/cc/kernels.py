"""CC algorithm -> columnar fluid kernel mapping.

The columnar fluid solver (:mod:`repro.fluid.solver`) advances every
flow with one of four vectorized update kernels.  This module is the
single source of truth for the kernel codes and for how a congestion
control algorithm — a registered :class:`~repro.cc.base.CCAlgorithm`
name or a fluid profile name — selects its kernel:

* explicitly named algorithms get their dedicated kernel (DCTCP's
  alpha-filtered window cut, DCQCN's line-rate decay/recovery);
* every other registered *window*-mode algorithm falls back to the
  generic slow-start/AIMD window kernel;
* every other registered *rate*-mode algorithm (TIMELY, HPCC, Swift)
  falls back to the DCQCN-style rate kernel — the closest fluid
  abstraction of "rate controlled by congestion feedback";
* ``ideal`` is the equal-share reference of Figure 10.

Kernel codes are small ints so a million-flow population stores its
per-flow kernel selection in one ``int8`` column.
"""

from __future__ import annotations

from repro.cc.base import CCMode
from repro.cc.registry import lookup
from repro.errors import ConfigError

#: Equal-share reference: rate == capacity / active flows, always.
KERNEL_IDEAL = 0
#: Generic window kernel: slow-start doubling, then AIMD (halve on mark).
KERNEL_SLOW_START = 1
#: DCTCP window kernel: slow start + alpha-proportional window cut.
KERNEL_DCTCP = 2
#: DCQCN rate kernel: line-rate start, alpha cut on mark, exponential
#: recovery toward line rate.
KERNEL_DCQCN = 3

#: All kernel codes, in code order (index == code).
KERNEL_NAMES = ("ideal", "slow_start", "dctcp", "dcqcn")

#: Names whose kernel is not derived from the registry's mode.
_EXPLICIT: dict[str, int] = {
    "ideal": KERNEL_IDEAL,
    "constant": KERNEL_IDEAL,
    "slow_start": KERNEL_SLOW_START,
    "dctcp": KERNEL_DCTCP,
    "dcqcn": KERNEL_DCQCN,
}


def fluid_kernel(name: str) -> int:
    """Kernel code for an algorithm or profile name.

    Accepts the explicit kernel names above, or any algorithm registered
    in :mod:`repro.cc.registry` (falls back on the algorithm's mode:
    window -> :data:`KERNEL_SLOW_START`, rate -> :data:`KERNEL_DCQCN`).
    """
    key = name.lower()
    if key in _EXPLICIT:
        return _EXPLICIT[key]
    cls = lookup(key)  # raises ConfigError for unknown names
    if cls.mode is CCMode.WINDOW:
        return KERNEL_SLOW_START
    return KERNEL_DCQCN


def kernel_name(code: int) -> str:
    """Human-readable name of a kernel code."""
    if not 0 <= code < len(KERNEL_NAMES):
        raise ConfigError(f"unknown fluid kernel code {code}")
    return KERNEL_NAMES[code]
