"""TIMELY (RTT-gradient rate control) as a Marlin CC module.

TIMELY (Mittal et al., SIGCOMM '15) is the paper's canonical example of a
delay-based algorithm that benefits from the FPGA's low, stable processing
latency (Section 2.1, reason 2 for choosing an FPGA over a host) and whose
EWMA arithmetic suits the Slow Path (Section 5.4 mentions Timely
alongside DCTCP).  The RTT-gradient EWMA here runs on the fast path with
the probed RTT (``prb-rtt``) that Table 3 exposes.

Rate update per completion event with measured RTT:

* ``rtt < t_low``    — additive increase (no congestion);
* ``rtt > t_high``   — multiplicative decrease proportional to overshoot;
* otherwise, gradient-based: increase when the normalized gradient is
  non-positive (HAI after several consecutive steps), decrease
  proportionally to a positive gradient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cc.base import (
    CCAlgorithm,
    CCMode,
    EventType,
    IntrinsicInput,
    IntrinsicOutput,
    OpCounts,
)
from repro.units import GBPS, MBPS, MICROSECOND


@dataclass
class TimelyState:
    """Customized variable block for TIMELY."""

    prev_rtt_ps: int = -1
    #: EWMA of RTT differences, picoseconds.
    rtt_diff_ps: float = 0.0
    #: Consecutive gradient-increase steps (enables HAI).
    increase_streak: int = 0


class Timely(CCAlgorithm):
    """TIMELY reaction logic."""

    name = "timely"
    mode = CCMode.RATE
    # Critical chain: the gradient EWMA and proportional decrease — two
    # multiplications and one division by min-RTT (16-bit after scaling).
    ops = OpCounts(add_sub=5, compare=4, mul32=2, div16=1)
    lines_of_code = 140

    def __init__(
        self,
        *,
        t_low_ps: int = 10 * MICROSECOND,
        t_high_ps: int = 100 * MICROSECOND,
        min_rtt_ps: int = 6 * MICROSECOND,
        ewma_alpha: float = 0.125,
        beta: float = 0.8,
        delta_bps: float = 1 * GBPS,
        hai_threshold: int = 5,
        min_rate_floor_bps: float = 100 * MBPS,
    ) -> None:
        if t_low_ps >= t_high_ps:
            raise ValueError("t_low must be below t_high")
        self.t_low_ps = t_low_ps
        self.t_high_ps = t_high_ps
        self.min_rtt_ps = min_rtt_ps
        self.ewma_alpha = ewma_alpha
        self.beta = beta
        self.delta_bps = delta_bps
        self.hai_threshold = hai_threshold
        self.min_rate_floor_bps = min_rate_floor_bps
        self._link_rate_bps: float = 100 * GBPS

    def initial_cust(self) -> TimelyState:
        return TimelyState()

    def initial_cwnd_or_rate(self, link_rate_bps: int) -> float:
        self._link_rate_bps = float(link_rate_bps)
        return float(link_rate_bps) / 10.0

    def min_rate_bps(self, link_rate_bps: int) -> float:
        return self.min_rate_floor_bps

    def on_event(
        self, intr: IntrinsicInput, cust: TimelyState, slow: Any
    ) -> IntrinsicOutput:
        if intr.evt_type != EventType.RX or intr.prb_rtt < 0:
            if intr.evt_type == EventType.RX and intr.flags.nack:
                return IntrinsicOutput(rewind_to_una=True)
            return IntrinsicOutput()

        rtt = intr.prb_rtt
        rate = intr.cwnd_or_rate
        if cust.prev_rtt_ps >= 0:
            new_diff = rtt - cust.prev_rtt_ps
            cust.rtt_diff_ps = (
                (1.0 - self.ewma_alpha) * cust.rtt_diff_ps + self.ewma_alpha * new_diff
            )
        cust.prev_rtt_ps = rtt
        gradient = cust.rtt_diff_ps / self.min_rtt_ps

        if rtt < self.t_low_ps:
            cust.increase_streak = 0
            rate += self.delta_bps
        elif rtt > self.t_high_ps:
            cust.increase_streak = 0
            rate *= 1.0 - self.beta * (1.0 - self.t_high_ps / rtt)
        elif gradient <= 0:
            cust.increase_streak += 1
            n = 5 if cust.increase_streak >= self.hai_threshold else 1
            rate += n * self.delta_bps
        else:
            cust.increase_streak = 0
            rate *= 1.0 - self.beta * min(gradient, 1.0)

        rate = min(max(rate, self.min_rate_floor_bps), self._link_rate_bps)
        return IntrinsicOutput(cwnd_or_rate=rate)
