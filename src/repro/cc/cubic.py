"""TCP Cubic as a Marlin CC module, with a lookup-table cube root.

The paper's Discussion (Section 8) notes that Cubic's cube root is the
expensive operation: "after optimizing the cubic root calculation using
lookup tables, Cubic still requires around 100 clock cycles" — so Cubic
flows must run at reduced per-flow PPS, using multiple flows to reach line
rate.  We reproduce both facts: the cube root here *is* a lookup table
(:func:`lut_cbrt`), and the op-cost model prices it at ~90 cycles so the
frequency-control analysis (Section 5.3) flags the reduced per-flow rate.

Window evolution follows RFC 8312: after a loss event at window ``w_max``,
``cwnd(t) = C * (t - K)^3 + w_max`` with ``K = cbrt(w_max * beta / C)``
(where ``beta`` is the multiplicative *decrease* amount, 0.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cc.base import (
    CCMode,
    EventType,
    IntrinsicInput,
    IntrinsicOutput,
    OpCounts,
)
from repro.cc.reno import DUP_ACK_THRESHOLD, Reno, RenoState
from repro.units import SECOND

#: Entries per octave in the cube-root table (matches a BRAM-friendly size).
_LUT_BITS = 9
_LUT_SIZE = 1 << _LUT_BITS

# cbrt(m) for m in [1, 8): table index i maps to m = 1 + 7 * i / SIZE.
_CBRT_TABLE = tuple(
    (1.0 + 7.0 * i / _LUT_SIZE) ** (1.0 / 3.0) for i in range(_LUT_SIZE + 1)
)


def lut_cbrt(x: float) -> float:
    """Cube root via range reduction + table lookup.

    Reduces ``x`` to ``m * 8**e`` with ``m`` in [1, 8), looks up
    ``cbrt(m)`` in a 512-entry table (linear interpolation between
    entries), and rescales by ``2**e``.  Worst-case relative error is
    below 1e-5, far tighter than Cubic needs.
    """
    if x < 0:
        raise ValueError(f"lut_cbrt requires x >= 0, got {x}")
    if x == 0.0:
        return 0.0
    e = 0
    m = x
    while m >= 8.0:
        m /= 8.0
        e += 1
    while m < 1.0:
        m *= 8.0
        e -= 1
    position = (m - 1.0) / 7.0 * _LUT_SIZE
    index = int(position)
    frac = position - index
    low = _CBRT_TABLE[index]
    high = _CBRT_TABLE[min(index + 1, _LUT_SIZE)]
    return (low + (high - low) * frac) * (2.0 ** e)


@dataclass
class CubicState(RenoState):
    """Reno recovery fields plus the cubic epoch."""

    w_max: float = 0.0
    #: Time of the last window-reduction event, ps (-1: no epoch yet).
    epoch_start: int = -1
    #: K, in seconds (float), computed at epoch start.
    k_seconds: float = 0.0


class Cubic(Reno):
    """TCP Cubic (RFC 8312) with LUT cube root."""

    name = "cubic"
    mode = CCMode.WINDOW
    # The cube root dominates the critical path (Section 8: ~100 cycles).
    ops = OpCounts(add_sub=4, compare=4, mul32=3, cube_root_lut=1)
    lines_of_code = 210

    def __init__(
        self,
        *,
        c: float = 0.4,
        beta: float = 0.3,
        **reno_kwargs: Any,
    ) -> None:
        super().__init__(**reno_kwargs)
        if c <= 0:
            raise ValueError(f"Cubic C must be positive, got {c}")
        if not 0.0 < beta < 1.0:
            raise ValueError(f"Cubic beta must be in (0, 1), got {beta}")
        self.c = c
        self.beta = beta

    def initial_cust(self) -> CubicState:
        return CubicState(ssthresh=self.initial_ssthresh)

    def on_event(
        self, intr: IntrinsicInput, cust: CubicState, slow: Any
    ) -> IntrinsicOutput:
        out = super().on_event(intr, cust, slow)
        cwnd = out.cwnd_or_rate if out.cwnd_or_rate is not None else intr.cwnd_or_rate

        entered_recovery = (
            cust.in_recovery
            and cust.dup_acks == DUP_ACK_THRESHOLD
            and intr.evt_type == EventType.RX
        )
        timed_out = intr.evt_type == EventType.TIMEOUT
        if entered_recovery or timed_out:
            # Start a new cubic epoch at the pre-cut window.
            cust.w_max = max(intr.cwnd_or_rate, 1.0)
            cust.epoch_start = intr.tstamp
            cust.k_seconds = lut_cbrt(cust.w_max * self.beta / self.c)
            if entered_recovery:
                cut = max(cust.w_max * (1.0 - self.beta), 2.0)
                cust.ssthresh = cut
                out.cwnd_or_rate = cut + DUP_ACK_THRESHOLD
            return out

        is_new_ack = (
            intr.evt_type == EventType.RX
            and not cust.in_recovery
            and out.cwnd_or_rate is not None
            and cust.epoch_start >= 0
            and cwnd >= cust.ssthresh
        )
        if is_new_ack:
            # Replace Reno's linear growth with the cubic target.
            t = (intr.tstamp - cust.epoch_start) / SECOND
            offset = t - cust.k_seconds
            target = self.c * offset * offset * offset + cust.w_max
            if target > cwnd:
                cwnd = min(cwnd + (target - cwnd) / cwnd, self.max_cwnd)
            else:
                cwnd = min(cwnd + 0.01 / cwnd, self.max_cwnd)
            out.cwnd_or_rate = cwnd
        return out
