"""Swift (delay-based datacenter CC) as a Marlin CC module.

Swift (Kumar et al., SIGCOMM '20, cited by the paper) drives the
congestion window from the measured RTT against a *target delay* with
flow-aware scaling: below target, additive increase; above target, a
multiplicative decrease proportional to the overshoot, applied at most
once per RTT.  The flow-scaling term raises the target for small
windows (fs_alpha / sqrt(cwnd)), letting many small flows coexist.

Delay-based algorithms are the paper's second argument for the FPGA
(Section 2.1): host stacks add latency jitter that corrupts exactly the
RTT signal Swift consumes, while the FPGA's fixed-cycle path keeps the
``prb-rtt`` field clean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.cc.base import (
    CCAlgorithm,
    CCMode,
    EventType,
    IntrinsicInput,
    IntrinsicOutput,
    OpCounts,
    TIMER_RTO,
)
from repro.units import MICROSECOND


@dataclass
class SwiftState:
    """Customized variable block for Swift."""

    last_ack: int = 0
    #: Only one multiplicative decrease per RTT.
    decrease_seq: int = -1


class Swift(CCAlgorithm):
    """Swift sender logic on the probed-RTT path."""

    name = "swift"
    mode = CCMode.WINDOW
    # Fast path: target computation (one sqrt via LUT-friendly reciprocal
    # iteration, priced as a 16-bit divide), compares, adds.
    ops = OpCounts(add_sub=5, compare=4, mul32=2, div16=1)
    lines_of_code = 160

    def __init__(
        self,
        *,
        base_target_ps: int = 12 * MICROSECOND,
        fs_alpha_ps: float = 30.0 * MICROSECOND,
        ai: float = 1.0,
        beta: float = 0.8,
        max_mdf: float = 0.5,
        initial_cwnd: float = 16.0,
        max_cwnd: float = 1 << 20,
        rto_ps: int = 400 * MICROSECOND,
    ) -> None:
        if not 0.0 < max_mdf < 1.0:
            raise ValueError(f"max_mdf must be in (0, 1), got {max_mdf}")
        self.base_target_ps = base_target_ps
        self.fs_alpha_ps = fs_alpha_ps
        self.ai = ai
        self.beta = beta
        self.max_mdf = max_mdf
        self.initial_cwnd = initial_cwnd
        self.max_cwnd = max_cwnd
        self.rto_ps = rto_ps

    def initial_cust(self) -> SwiftState:
        return SwiftState()

    def initial_cwnd_or_rate(self, link_rate_bps: int) -> float:
        return self.initial_cwnd

    def on_flow_start(self, cust: Any, slow: Any, now_ps: int) -> IntrinsicOutput:
        return IntrinsicOutput(rst_timers=[(TIMER_RTO, self.rto_ps)])

    def target_delay_ps(self, cwnd: float) -> float:
        """Base target plus the flow-scaling term (higher for small cwnd)."""
        return self.base_target_ps + self.fs_alpha_ps / math.sqrt(max(cwnd, 1.0))

    def on_event(self, intr: IntrinsicInput, cust: SwiftState, slow: Any) -> IntrinsicOutput:
        if intr.evt_type == EventType.TIMEOUT and intr.timer_id == TIMER_RTO:
            return IntrinsicOutput(
                cwnd_or_rate=1.0,
                rewind_to_una=True,
                rst_timers=[(TIMER_RTO, self.rto_ps)],
            )
        if intr.evt_type != EventType.RX:
            return IntrinsicOutput()
        if intr.flags.nack:
            return IntrinsicOutput(rewind_to_una=True)
        if intr.psn <= cust.last_ack:
            return IntrinsicOutput()
        acked = intr.psn - cust.last_ack
        cust.last_ack = intr.psn
        out = IntrinsicOutput(rst_timers=[(TIMER_RTO, self.rto_ps)])
        if intr.prb_rtt < 0:
            return out

        cwnd = intr.cwnd_or_rate
        target = self.target_delay_ps(cwnd)
        if intr.prb_rtt < target:
            cwnd = min(cwnd + self.ai * acked / max(cwnd, 1.0), self.max_cwnd)
        elif intr.psn > cust.decrease_seq:
            overshoot = (intr.prb_rtt - target) / intr.prb_rtt
            factor = max(1.0 - self.beta * overshoot, 1.0 - self.max_mdf)
            cwnd = max(cwnd * factor, 1.0)
            cust.decrease_seq = intr.nxt
        out.cwnd_or_rate = cwnd
        return out
