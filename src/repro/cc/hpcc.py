"""HPCC (High Precision Congestion Control) as a Marlin CC module.

HPCC (Li et al., SIGCOMM '19) is the canonical INT-based algorithm the
paper's introduction motivates: switches attach per-hop telemetry
(queue length, cumulative TX bytes, timestamp, capacity) to packets and
the sender computes each link's *inflight utilization*

    u_i = qlen_i / (B_i * T)  +  txRate_i / B_i

driving the window multiplicatively toward ``eta`` (95%) utilization,
with an additive term for fairness and a reference window ``Wc``
updated once per RTT.

Testing HPCC is exactly the scenario Marlin's R2 targets: the module
consumes the INT records that the switch stamps and the ACK/INFO path
echoes (enable with ``TestConfig(int_enabled=True)``).

Hardware-cost caveat (Section 8 analysis): the fast path performs two
32-bit divisions, so it needs ~55 cycles — more than the 27-cycle
per-packet budget at MTU 1024.  The frequency-control validator flags
this and prescribes the paper's remedy: reduce per-flow PPS and use
multiple flows per port (the integration tests run HPCC at 4 flows per
port, which spaces same-flow feedback safely).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cc.base import (
    CCAlgorithm,
    CCMode,
    EventType,
    IntrinsicInput,
    IntrinsicOutput,
    OpCounts,
    TIMER_RTO,
)
from repro.units import BITS_PER_BYTE, MICROSECOND, SECOND


@dataclass
class HpccState:
    """Customized variable block for HPCC."""

    #: EWMA of the max-link inflight utilization.
    u: float = 0.0
    #: Reference window (packets), updated once per RTT.
    wc: float = 0.0
    inc_stage: int = 0
    #: ACKs up to this PSN belong to the current update round.
    last_update_seq: int = 0
    last_ack: int = 0
    #: Previous INT snapshot, per hop: (tstamp_ps, tx_bytes, queue_bytes).
    prev_int: tuple = ()


class Hpcc(CCAlgorithm):
    """HPCC sender logic over Marlin's INT path."""

    name = "hpcc"
    mode = CCMode.WINDOW
    # Fast path: per-link txRate and utilization divisions dominate.
    ops = OpCounts(add_sub=6, compare=4, mul32=2, div32=2)
    lines_of_code = 230

    def __init__(
        self,
        *,
        eta: float = 0.95,
        max_inc_stage: int = 5,
        w_ai_packets: float = 0.5,
        base_rtt_ps: int = 6 * MICROSECOND,
        mss_bytes: int = 1024,
        initial_window: float = 64.0,
        rto_ps: int = 400 * MICROSECOND,
    ) -> None:
        if not 0.0 < eta <= 1.0:
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        self.eta = eta
        self.max_inc_stage = max_inc_stage
        self.w_ai = w_ai_packets
        self.base_rtt_ps = base_rtt_ps
        self.mss_bytes = mss_bytes
        self.initial_window = initial_window
        self.rto_ps = rto_ps

    # -- state --------------------------------------------------------------

    def initial_cust(self) -> HpccState:
        return HpccState(wc=self.initial_window)

    def initial_cwnd_or_rate(self, link_rate_bps: int) -> float:
        return self.initial_window

    def on_flow_start(self, cust: Any, slow: Any, now_ps: int) -> IntrinsicOutput:
        return IntrinsicOutput(rst_timers=[(TIMER_RTO, self.rto_ps)])

    # -- fast path ----------------------------------------------------------

    def on_event(self, intr: IntrinsicInput, cust: HpccState, slow: Any) -> IntrinsicOutput:
        if intr.evt_type == EventType.TIMEOUT and intr.timer_id == TIMER_RTO:
            cust.u = 1.0
            cust.inc_stage = 0
            return IntrinsicOutput(
                cwnd_or_rate=1.0,
                rewind_to_una=True,
                rst_timers=[(TIMER_RTO, self.rto_ps)],
            )
        if intr.evt_type != EventType.RX:
            return IntrinsicOutput()
        if intr.flags.nack:
            return IntrinsicOutput(rewind_to_una=True)
        if intr.psn <= cust.last_ack:
            return IntrinsicOutput()

        update_wc = intr.psn > cust.last_update_seq
        cust.last_ack = intr.psn
        if intr.int_path:
            self._measure_inflight(intr.int_path, cust)
        window = self._compute_window(cust, update_wc)
        if update_wc:
            cust.last_update_seq = intr.nxt
        return IntrinsicOutput(
            cwnd_or_rate=window, rst_timers=[(TIMER_RTO, self.rto_ps)]
        )

    # -- HPCC internals -----------------------------------------------------

    def _measure_inflight(self, path: tuple, cust: HpccState) -> None:
        """Update the utilization EWMA from consecutive INT snapshots."""
        t_window = self.base_rtt_ps
        u_max = 0.0
        tau_ps = t_window
        prev = cust.prev_int
        for index, record in enumerate(path):
            if index < len(prev):
                prev_ts, prev_tx, prev_qlen = prev[index]
                dt = record.tstamp_ps - prev_ts
                if dt <= 0:
                    continue
                tx_rate_bps = (
                    (record.tx_bytes - prev_tx) * BITS_PER_BYTE * SECOND / dt
                )
                qlen = min(record.queue_bytes, prev_qlen)
                u_link = (
                    qlen * BITS_PER_BYTE / (record.link_rate_bps * t_window / SECOND)
                    + tx_rate_bps / record.link_rate_bps
                )
                if u_link > u_max:
                    u_max = u_link
                    tau_ps = dt
        cust.prev_int = tuple(
            (r.tstamp_ps, r.tx_bytes, r.queue_bytes) for r in path
        )
        if u_max <= 0.0:
            return
        tau = min(tau_ps, t_window)
        weight = tau / t_window
        cust.u = (1.0 - weight) * cust.u + weight * u_max

    def _compute_window(self, cust: HpccState, update_wc: bool) -> float:
        if cust.u >= self.eta or cust.inc_stage >= self.max_inc_stage:
            window = cust.wc / max(cust.u / self.eta, 1e-3) + self.w_ai
            if update_wc:
                cust.inc_stage = 0
                cust.wc = window
        else:
            window = cust.wc + self.w_ai
            if update_wc:
                cust.inc_stage += 1
                cust.wc = window
        return max(window, 1.0)
